"""``repro.obs`` — causal request tracing, kernel profiling, SLO watch.

The observability layer *above* :mod:`repro.telemetry`: where telemetry
answers "what happened" (spans, counters, events), ``repro.obs`` answers
"where did this one tick's deadline go" and "is this tenant's error
budget burning":

* :class:`TraceContext` / :class:`RequestTracer` — causal request
  tracing. Every offloaded tick (and every two-phase migration) gets a
  trace id; named segments (``serialize``, ``uplink``, ``queue_wait``,
  ``service``, ``downlink``, ``actuate``) are recorded against virtual
  time as the request crosses the robot, the radio, the pool queue and
  the worker, forming one causal tree per request. Trees export to the
  existing Chrome-trace path and feed :func:`critical_path_report`,
  which attributes each deadline miss to its dominant segment.
* :class:`KernelProfiler` — opt-in DES self-profiling: per-event-label
  wall-clock attribution, heap-churn / cancel / same-time-tie counters
  and a collapsed-stack (flamegraph) exporter. ``BENCH_kernel_profile
  .json`` is its artifact — the "before" baseline of the planned kernel
  overhaul.
* :class:`SloMonitor` — streaming P² quantile estimators (no sample
  retention) plus per-tenant deadline-miss burn-rate windows; breaches
  emit typed ``slo_breach`` events on the telemetry
  :class:`~repro.telemetry.events.EventBus` that the admission
  controller and the autoscaler subscribe to.

Everything here follows the PR 1 nullable contract: hooks cost one
``is None`` test when disabled, and a disabled run is byte-identical
to a build without this package. See ``docs/telemetry.md``.
"""

from repro.obs.analyze import critical_path_report
from repro.obs.context import IdAllocator, TraceContext
from repro.obs.profiler import KernelProfiler, aggregate_profiles
from repro.obs.slo import P2Quantile, SloMonitor, SloPolicy
from repro.obs.tracing import SEGMENT_NAMES, RequestTracer, Segment, TraceTree

__all__ = [
    "IdAllocator",
    "KernelProfiler",
    "aggregate_profiles",
    "P2Quantile",
    "RequestTracer",
    "SEGMENT_NAMES",
    "Segment",
    "SloMonitor",
    "SloPolicy",
    "TraceContext",
    "TraceTree",
    "critical_path_report",
]
