"""Causal request tracing: one tree of named segments per request.

A :class:`RequestTracer` owns every in-flight and finished
:class:`TraceTree`. The producing side is three calls:

* ``ctx = tracer.start("tick", tenant, t, deadline_s=...)`` when the
  request is born (the context rides on the request object);
* ``tracer.segment(ctx, "uplink", t0, t1)`` at every layer the request
  crosses — the canonical segment vocabulary is :data:`SEGMENT_NAMES`;
* ``tracer.finish(ctx, t, status=...)`` at the terminal point.

Segments telescope: within one tick the boundaries are shared
(``serialize`` ends where ``uplink`` starts, ...), so the sum of
segment durations reconciles with the end-to-end latency — the
invariant :meth:`TraceTree.reconciles` checks and the fig13 acceptance
test asserts. Every recorded segment is mirrored into the plain span
:class:`~repro.telemetry.spans.Tracer` (category ``"request"``), so
the existing Chrome-trace export shows causal trees with no new
artifact format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.context import IdAllocator, TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.spans import Tracer

#: The canonical segment vocabulary of an offloaded tick, in causal
#: order. Layers may add others (``transport``, 2PC phase names), but
#: the tick path sticks to these six.
SEGMENT_NAMES: tuple[str, ...] = (
    "serialize",
    "uplink",
    "queue_wait",
    "service",
    "downlink",
    "actuate",
)


@dataclass
class Segment:
    """One named interval of one trace."""

    ctx: TraceContext
    name: str
    t_start: float
    t_end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class TraceTree:
    """One request's causal tree: a root plus its segments."""

    kind: str  # "tick" | "vdp_tick" | "migration" | ...
    name: str  # tenant / node the request belongs to
    root: TraceContext
    t_start: float
    deadline_s: float | None = None
    t_end: float | None = None
    status: str = "open"
    segments: list[Segment] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.t_end is not None

    @property
    def latency_s(self) -> float:
        """End-to-end latency (0.0 while open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def missed_deadline(self) -> bool:
        """Finished, had a deadline, and blew it."""
        return (
            self.t_end is not None
            and self.deadline_s is not None
            and self.latency_s > self.deadline_s
        )

    def top_segments(self) -> list[Segment]:
        """Segments that are direct children of the root.

        Nested sub-attribution (the radio splitting ``uplink`` into
        ``air`` + ``wired``) hangs *under* a top-level segment and must
        not double-count in sums, so every aggregate below works on
        this level only.
        """
        return [s for s in self.segments if s.ctx.parent_id == self.root.span_id]

    def segment_sum(self) -> float:
        """Total time across the top-level segments."""
        return sum(s.duration for s in self.top_segments())

    def by_segment(self) -> dict[str, float]:
        """Summed duration per top-level segment name, insertion-ordered."""
        out: dict[str, float] = {}
        for s in self.top_segments():
            out[s.name] = out.get(s.name, 0.0) + s.duration
        return out

    def dominant_segment(self) -> tuple[str, float] | None:
        """The (name, seconds) segment that ate the most time."""
        totals = self.by_segment()
        if not totals:
            return None
        name = max(totals, key=lambda k: (totals[k], k))
        return name, totals[name]

    def reconciles(self, tol_s: float = 1e-9) -> bool:
        """Whether segment time telescopes to the measured latency.

        Only meaningful for finished trees whose segments tile the
        whole interval (the tick path). Trees with overlapping or
        gapped segments (a migration's retries) legitimately fail.
        """
        if self.t_end is None:
            return False
        return abs(self.segment_sum() - self.latency_s) <= tol_s


class RequestTracer:
    """Records causal trees and mirrors them onto a span tracer.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.telemetry.spans.Tracer` every segment
        is mirrored into (track ``req:<name>``, category
        ``"request"``) — this is what puts causal trees in the Chrome
        trace artifact.
    seed:
        Seed for deterministic trace-id allocation.
    max_traces:
        Retention cap; trees started past it are not recorded
        (``dropped`` counts them) and their segments become no-ops.
    """

    def __init__(
        self,
        tracer: "Tracer | None" = None,
        seed: int = 0,
        max_traces: int = 100_000,
    ) -> None:
        self.tracer = tracer
        self.ids = IdAllocator(seed)
        self.max_traces = max_traces
        self.dropped = 0
        self._trees: dict[int, TraceTree] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def start(
        self,
        kind: str,
        name: str,
        t: float,
        deadline_s: float | None = None,
        **attrs: Any,
    ) -> TraceContext | None:
        """Open a new trace; returns its root context (or ``None`` when
        the retention cap is hit — every later call tolerates that)."""
        if len(self._trees) >= self.max_traces:
            self.dropped += 1
            return None
        ctx = TraceContext(self.ids.new_trace_id(), self.ids.new_span_id())
        self._trees[ctx.trace_id] = TraceTree(
            kind=kind,
            name=name,
            root=ctx,
            t_start=t,
            deadline_s=deadline_s,
            attrs=dict(attrs),
        )
        return ctx

    def segment(
        self,
        ctx: TraceContext | None,
        name: str,
        t_start: float,
        t_end: float,
        **attrs: Any,
    ) -> TraceContext | None:
        """Record one named interval under ``ctx``; returns the
        segment's own context for deeper nesting."""
        if ctx is None:
            return None
        tree = self._trees.get(ctx.trace_id)
        if tree is None:
            return None
        child = ctx.child(self.ids.new_span_id())
        tree.segments.append(Segment(child, name, t_start, t_end, dict(attrs)))
        if self.tracer is not None:
            self.tracer.complete(
                name,
                ts=t_start,
                dur=t_end - t_start,
                track=f"req:{tree.name}",
                cat="request",
                trace=child.short(),
                **attrs,
            )
        return child

    def instant(
        self, ctx: TraceContext | None, name: str, t: float, **attrs: Any
    ) -> TraceContext | None:
        """A zero-duration marker (a drop, a rebalance) under ``ctx``."""
        return self.segment(ctx, name, t, t, **attrs)

    def finish(
        self,
        ctx: TraceContext | None,
        t: float,
        status: str = "ok",
        **attrs: Any,
    ) -> TraceTree | None:
        """Close the trace ``ctx`` belongs to; idempotent per trace."""
        if ctx is None:
            return None
        tree = self._trees.get(ctx.trace_id)
        if tree is None or tree.t_end is not None:
            return tree
        tree.t_end = t
        tree.status = status
        tree.attrs.update(attrs)
        if self.tracer is not None:
            self.tracer.complete(
                f"{tree.kind}:{tree.name}",
                ts=tree.t_start,
                dur=t - tree.t_start,
                track=f"req:{tree.name}",
                cat="request",
                trace=tree.root.short(),
                status=status,
                miss=tree.missed_deadline,
            )
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tree(self, ctx_or_id: TraceContext | int) -> TraceTree | None:
        """Look a tree up by context or trace id."""
        tid = ctx_or_id.trace_id if isinstance(ctx_or_id, TraceContext) else ctx_or_id
        return self._trees.get(tid)

    def trees(self, kind: str | None = None) -> list[TraceTree]:
        """All recorded trees (optionally of one kind), start order."""
        out = list(self._trees.values())
        if kind is not None:
            out = [t for t in out if t.kind == kind]
        return out

    def finished(self, kind: str | None = None) -> list[TraceTree]:
        """Finished trees only."""
        return [t for t in self.trees(kind) if t.finished]

    def misses(self, kind: str | None = None) -> list[TraceTree]:
        """Finished trees that blew their deadline."""
        return [t for t in self.trees(kind) if t.missed_deadline]

    def __len__(self) -> int:
        return len(self._trees)
