"""The DES kernel self-profiler: where does wall-clock go per event?

Opt-in (``profiler.attach(sim)``); when attached, every fired event is
timed with a real clock and attributed to its *label* — the same label
scheduling sites already pass for traces — so a profile of a mission
run says "X ms in ``net:scan`` deliveries, Y ms in ``pool:...``
completions" without touching any scheduling site. On top of the
per-label attribution the profiler counts the kernel's own churn:

* scheduler traffic (pushes, lazy-cancellations, dead-entry prunes)
  from the :class:`~repro.sim.events.EventQueue` counters;
* same-time ties — events firing at an identical virtual time, the
  population the ordering auditor worries about and a tie-break
  optimization would target;
* causal stacks — each event's :attr:`~repro.sim.events.Event.parent`
  chain, collapsed into flamegraph lines (``a;b;c <usec>``), showing
  which *scheduling chains* dominate, not just which labels.

Its JSON artifact (``BENCH_kernel_profile.json``) is the "before"
baseline the ROADMAP's kernel-overhaul item will be measured against.

This module reads ``time.perf_counter`` by design — it measures the
host, not the simulation — and is exempted from the DET001 wall-clock
lint for exactly that reason. Virtual-time determinism is untouched:
the profiler never schedules, samples RNG, or perturbs event order.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class _LabelStat:
    """Accumulated wall time for one event label."""

    __slots__ = ("count", "wall_s")

    def __init__(self) -> None:
        self.count = 0
        self.wall_s = 0.0


class KernelProfiler:
    """Per-event-label wall-clock attribution for one simulator.

    Parameters
    ----------
    clock:
        Wall-clock source (``time.perf_counter``); injectable for
        tests.
    track_stacks:
        Record collapsed causal stacks (costs one dict insert per
        event plus a bounded parent map).
    max_stack_depth:
        Longest parent chain rendered into a collapsed stack.
    max_stack_entries:
        Bound on the seq -> (label, parent) map; beyond it new events
        still profile by label but their stacks collapse to the leaf.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        track_stacks: bool = True,
        max_stack_depth: int = 12,
        max_stack_entries: int = 1_000_000,
    ) -> None:
        self.clock = clock
        self.track_stacks = track_stacks
        self.max_stack_depth = max_stack_depth
        self.max_stack_entries = max_stack_entries
        self.events = 0
        self.ties = 0
        self.wall_s = 0.0
        self.labels: dict[str, _LabelStat] = {}
        #: Collapsed stack ("root;...;leaf") -> [count, wall_s].
        self.stacks: dict[str, list[float]] = {}
        self._parents: dict[int, tuple[str, int]] = {}
        self._last_time: float | None = None
        self._sim: Simulator | None = None
        self._queue_base: tuple[int, int, int] = (0, 0, 0)
        self._t_attach: float = 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> "KernelProfiler":
        """Install on ``sim``; profiling starts with the next event."""
        sim.profiler = self
        self._sim = sim
        q = sim.queue
        self._queue_base = (q.pushes, q.cancels, q.pruned)
        self._t_attach = self.clock()
        return self

    def detach(self) -> None:
        """Stop profiling ``sim`` (accumulated data is kept)."""
        if self._sim is not None and self._sim.profiler is self:
            self._sim.profiler = None

    # ------------------------------------------------------------------
    # The hot-path hook (called by Simulator.step)
    # ------------------------------------------------------------------
    def record(
        self, label: str, t_event: float, seq: int, parent: int, wall_s: float
    ) -> None:
        """Attribute one fired event's wall time.

        Takes scalars, not the :class:`~repro.sim.events.Event` handle:
        under slot reuse the callback may have recycled the event by
        the time the kernel records its timing, so the kernel snapshots
        ``label``/``time``/``seq``/``parent`` before firing.
        """
        label = label or "(unlabelled)"
        stat = self.labels.get(label)
        if stat is None:
            stat = self.labels[label] = _LabelStat()
        stat.count += 1
        stat.wall_s += wall_s
        self.events += 1
        self.wall_s += wall_s
        if t_event == self._last_time:  # lint: ok(SIM002): tie counting is the point
            self.ties += 1
        self._last_time = t_event
        if not self.track_stacks:
            return
        if len(self._parents) < self.max_stack_entries:
            self._parents[seq] = (label, parent)
        stack = self._stack_of(label, parent)
        entry = self.stacks.get(stack)
        if entry is None:
            self.stacks[stack] = [1, wall_s]
        else:
            entry[0] += 1
            entry[1] += wall_s

    def _stack_of(self, leaf: str, parent_seq: int) -> str:
        frames = [leaf]
        seq = parent_seq
        while seq != -1 and len(frames) < self.max_stack_depth:
            got = self._parents.get(seq)
            if got is None:
                break
            frames.append(got[0])
            seq = got[1]
        frames.reverse()
        return ";".join(frames)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def queue_counters(self) -> dict[str, int]:
        """Scheduler churn since attach: pushes, cancels, dead prunes."""
        if self._sim is None:
            return {"pushes": 0, "cancels": 0, "pruned": 0}
        q = self._sim.queue
        p0, c0, d0 = self._queue_base
        return {
            "pushes": q.pushes - p0,
            "cancels": q.cancels - c0,
            "pruned": q.pruned - d0,
        }

    def snapshot(self, top: int = 40) -> dict[str, Any]:
        """JSON-ready profile: totals, per-label wall, churn, stacks."""
        by_label = sorted(
            self.labels.items(), key=lambda kv: kv[1].wall_s, reverse=True
        )
        by_stack = sorted(
            self.stacks.items(), key=lambda kv: kv[1][1], reverse=True
        )
        total = self.wall_s or 1.0
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "wall_us_per_event": (
                self.wall_s / self.events * 1e6 if self.events else 0.0
            ),
            "same_time_ties": self.ties,
            "tie_fraction": self.ties / self.events if self.events else 0.0,
            "queue": self.queue_counters(),
            "labels": {
                label: {
                    "count": s.count,
                    "wall_s": s.wall_s,
                    "share": s.wall_s / total,
                }
                for label, s in by_label[:top]
            },
            "top_stacks": {
                stack: {"count": int(n), "wall_s": w}
                for stack, (n, w) in by_stack[:top]
            },
        }

    def to_collapsed(self) -> str:
        """Flamegraph collapsed-stack lines: ``a;b;c <microseconds>``.

        Feed to any flamegraph renderer (e.g. speedscope or
        ``flamegraph.pl``); weights are integer microseconds.
        """
        lines = [
            f"{stack} {max(1, round(w * 1e6))}"
            for stack, (_, w) in sorted(self.stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_json(self, path: str | Path, top: int = 40) -> Path:
        """Write :meth:`snapshot` as indented JSON."""
        p = Path(path)
        p.write_text(json.dumps(self.snapshot(top), indent=1, sort_keys=True))
        return p


def aggregate_profiles(
    profilers: Sequence[KernelProfiler], top: int = 40
) -> dict[str, Any]:
    """Merge profiles from many simulators into one snapshot dict.

    Experiment runners construct a fresh simulator per sweep point;
    ``Simulator.install_default_profiling`` hands back one profiler per
    simulator, and this folds them into a single label/stack/churn
    profile (plus a ``simulators`` count) for the JSON artifact.
    """
    merged = KernelProfiler()
    queue = {"pushes": 0, "cancels": 0, "pruned": 0}
    for p in profilers:
        merged.events += p.events
        merged.ties += p.ties
        merged.wall_s += p.wall_s
        for label, s in p.labels.items():
            stat = merged.labels.get(label)
            if stat is None:
                stat = merged.labels[label] = _LabelStat()
            stat.count += s.count
            stat.wall_s += s.wall_s
        for stack, (n, w) in p.stacks.items():
            entry = merged.stacks.get(stack)
            if entry is None:
                merged.stacks[stack] = [n, w]
            else:
                entry[0] += n
                entry[1] += w
        for key, val in p.queue_counters().items():
            queue[key] += val
    snap = merged.snapshot(top)
    snap["queue"] = queue
    snap["simulators"] = len(profilers)
    return snap
