"""SLO monitoring: streaming quantiles + deadline-miss burn rates.

The monitor watches every served tick (``observe``) and keeps, per
tenant:

* **P² quantile estimators** — the classic Jain & Chlamtac (1985)
  five-marker algorithm: p50/p95/p99 of tick latency in O(1) memory,
  no sample retention (a 64-robot fleet at 5 Hz would otherwise retain
  hundreds of thousands of floats per quantile);
* a **burn-rate window** — deadline misses over served ticks across a
  sliding window, held as ~10 coarse time buckets (O(1) memory again).

When a tenant's burn rate crosses the policy threshold the monitor
emits a typed ``slo_breach`` event on the telemetry
:class:`~repro.telemetry.events.EventBus` (and ``slo_recovered`` when
it re-arms), which :meth:`repro.cloud.Autoscaler.watch_slo` and
:meth:`repro.cloud.AdmissionController.watch_slo` subscribe to — the
serving layer reacts to the same signal an operator's pager would.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry


class P2Quantile:
    """Streaming quantile via the P² algorithm (no sample retention).

    Five markers track the running quantile; until five observations
    arrive the exact small-sample quantile is returned. Accuracy is
    within a few percent for the smooth latency distributions the
    serving layer produces, at five floats of state.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        """Feed one observation."""
        self.count += 1
        if self.count <= 5:
            self._initial.append(x)
            if self.count == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
            return
        h, n, d = self._heights, self._positions, self._desired
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            d[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                s = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, s)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, s)
                n[i] += s

    def _parabolic(self, i: int, s: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + s / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, s: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(s)
        return h[i] + s * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (NaN before the first observation)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            vals = sorted(self._initial)
            idx = max(0, math.ceil(self.q * len(vals)) - 1)
            return vals[idx]
        return self._heights[2]


@dataclass(frozen=True)
class SloPolicy:
    """When a tenant's deadline-miss burn rate counts as a breach."""

    #: Sliding-window length the burn rate is computed over.
    window_s: float = 5.0
    #: Miss fraction over the window that fires ``slo_breach``.
    burn_threshold: float = 0.1
    #: Served ticks the window must hold before it can breach.
    min_samples: int = 20
    #: Latency quantiles tracked per tenant (P², streaming).
    quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
    #: A breached tenant re-arms when burn drops below
    #: ``burn_threshold * rearm_factor`` (hysteresis against flapping).
    rearm_factor: float = 0.5


@dataclass(frozen=True)
class SloBreach:
    """One breach (or recovery) the monitor recorded."""

    t: float
    tenant: str
    kind: str  # "slo_breach" | "slo_recovered"
    burn_rate: float
    window_s: float
    p95_s: float


class _TenantSlo:
    """Per-tenant streaming state."""

    __slots__ = ("estimators", "buckets", "breached")

    def __init__(self, policy: SloPolicy) -> None:
        self.estimators = {q: P2Quantile(q) for q in policy.quantiles}
        #: (bucket_start_t, served, missed) ring, ~10 buckets a window.
        self.buckets: deque[list[float]] = deque()
        self.breached = False


@dataclass
class SloMonitor:
    """Watches tick outcomes and emits breach events on the bus.

    Attach to a :class:`~repro.telemetry.Telemetry` via
    ``telemetry.enable_slo()``; :class:`~repro.cloud.RobotTenant`
    feeds it automatically from each completion.
    """

    telemetry: "Telemetry"
    policy: SloPolicy = field(default_factory=SloPolicy)
    #: Every breach/recovery, in order (typed view of the bus events).
    breaches: list[SloBreach] = field(default_factory=list)
    _tenants: dict[str, _TenantSlo] = field(default_factory=dict)

    def observe(
        self, tenant: str, latency_s: float, deadline_s: float, t: float
    ) -> SloBreach | None:
        """Feed one served tick; returns the breach/recovery if any."""
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantSlo(self.policy)
        for est in state.estimators.values():
            est.observe(latency_s)
        missed = latency_s > deadline_s
        self._bucket(state, t, missed)
        served, miss_count = self._window_totals(state, t)
        if served < self.policy.min_samples:
            return None
        burn = miss_count / served
        if not state.breached and burn > self.policy.burn_threshold:
            state.breached = True
            return self._record(state, "slo_breach", tenant, burn, t)
        if state.breached and burn <= (
            self.policy.burn_threshold * self.policy.rearm_factor
        ):
            state.breached = False
            return self._record(state, "slo_recovered", tenant, burn, t)
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def quantile(self, tenant: str, q: float) -> float:
        """Current latency quantile estimate for ``tenant`` (NaN if unseen)."""
        state = self._tenants.get(tenant)
        if state is None or q not in state.estimators:
            return math.nan
        return state.estimators[q].value()

    def burn_rate(self, tenant: str, t: float) -> float:
        """Miss fraction over the current window (NaN with no ticks)."""
        state = self._tenants.get(tenant)
        if state is None:
            return math.nan
        served, missed = self._window_totals(state, t)
        return missed / served if served else math.nan

    def tenants(self) -> tuple[str, ...]:
        """Tenants observed so far, first-seen order."""
        return tuple(self._tenants)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bucket(self, state: _TenantSlo, t: float, missed: bool) -> None:
        width = self.policy.window_s / 10.0
        start = math.floor(t / width) * width
        if not state.buckets or state.buckets[-1][0] != start:
            state.buckets.append([start, 0.0, 0.0])
        state.buckets[-1][1] += 1.0
        if missed:
            state.buckets[-1][2] += 1.0
        horizon = t - self.policy.window_s
        while state.buckets and state.buckets[0][0] + width <= horizon:
            state.buckets.popleft()

    def _window_totals(self, state: _TenantSlo, t: float) -> tuple[int, int]:
        horizon = t - self.policy.window_s
        served = missed = 0.0
        for start, n, m in state.buckets:
            if start + self.policy.window_s / 10.0 > horizon:
                served += n
                missed += m
        return int(served), int(missed)

    def _record(
        self, state: _TenantSlo, kind: str, tenant: str, burn: float, t: float
    ) -> SloBreach:
        p95 = state.estimators.get(0.95)
        breach = SloBreach(
            t=t,
            tenant=tenant,
            kind=kind,
            burn_rate=burn,
            window_s=self.policy.window_s,
            p95_s=p95.value() if p95 is not None else math.nan,
        )
        self.breaches.append(breach)
        fields: dict[str, Any] = {
            "tenant": breach.tenant,
            "burn_rate": breach.burn_rate,
            "window_s": breach.window_s,
            "p95_s": breach.p95_s,
            "threshold": self.policy.burn_threshold,
        }
        self.telemetry.emit(kind, t=t, track="slo", **fields)
        return breach
