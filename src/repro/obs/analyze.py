"""Critical-path analysis over recorded request traces.

Turns a :class:`~repro.obs.tracing.RequestTracer` into the report the
``repro trace <artifact> --critical-path`` CLI prints: per-kind trace
counts, where the time went segment-by-segment, and — the point of the
exercise — each deadline miss attributed to its *dominant* segment, so
"the fleet missed deadlines" becomes "the misses were queue-wait, not
radio".
"""

from __future__ import annotations

from repro.analysis.tables import Table, format_seconds
from repro.obs.tracing import RequestTracer, TraceTree

#: Deadline misses listed individually before the report elides.
_MAX_LISTED_MISSES = 20


def _share(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.0f}%" if whole > 0 else "-"


def critical_path_report(requests: RequestTracer) -> str:
    """Render the critical-path report (a friendly note when empty)."""
    trees = requests.trees()
    if not trees:
        return (
            "no request traces recorded — nothing crossed an obs-"
            "instrumented path (tick serving, VDP sampling, 2PC "
            "migration) in this run"
        )
    parts: list[Table] = [_overview_table(trees), _segment_table(trees)]
    misses = [t for t in trees if t.missed_deadline]
    if misses:
        parts.append(_miss_table(misses))
    rendered = [t.render() for t in parts]
    if not misses:
        rendered.append("no deadline misses — every finished trace met its deadline")
    return "\n\n".join(rendered)


def _overview_table(trees: list[TraceTree]) -> Table:
    t = Table(
        title="request traces",
        columns=["kind", "traces", "finished", "misses", "mean latency", "worst"],
    )
    kinds: dict[str, list[TraceTree]] = {}
    for tree in trees:
        kinds.setdefault(tree.kind, []).append(tree)
    for kind in sorted(kinds):
        group = kinds[kind]
        fin = [x for x in group if x.finished]
        lats = [x.latency_s for x in fin]
        t.add_row(
            kind,
            len(group),
            len(fin),
            sum(1 for x in group if x.missed_deadline),
            format_seconds(sum(lats) / len(lats)) if lats else "-",
            format_seconds(max(lats)) if lats else "-",
        )
    return t


def _segment_table(trees: list[TraceTree]) -> Table:
    t = Table(
        title="time by segment (all traces)",
        columns=["segment", "count", "total", "mean", "share"],
    )
    # Top-level segments only: nested sub-attribution (air/wired under
    # an uplink hop) would double-count its parent's time in the shares.
    totals: dict[str, list[float]] = {}
    for tree in trees:
        for seg in tree.top_segments():
            entry = totals.setdefault(seg.name, [0.0, 0.0])
            entry[0] += 1.0
            entry[1] += seg.duration
    grand = sum(w for _, w in totals.values())
    for name in sorted(totals, key=lambda k: totals[k][1], reverse=True):
        n, w = totals[name]
        t.add_row(
            name,
            int(n),
            format_seconds(w),
            format_seconds(w / n) if n else "-",
            _share(w, grand),
        )
    return t


def _miss_table(misses: list[TraceTree]) -> Table:
    t = Table(
        title="deadline misses by dominant segment",
        columns=["trace", "kind", "latency", "deadline", "dominant segment", "share"],
    )
    by_dominant: dict[str, int] = {}
    for tree in misses[:_MAX_LISTED_MISSES]:
        dom = tree.dominant_segment()
        dom_name, dom_s = dom if dom is not None else ("(no segments)", 0.0)
        by_dominant[dom_name] = by_dominant.get(dom_name, 0) + 1
        assert tree.deadline_s is not None
        t.add_row(
            f"{tree.name}#{tree.root.trace_id:08x}",
            tree.kind,
            format_seconds(tree.latency_s),
            format_seconds(tree.deadline_s),
            dom_name,
            _share(dom_s, tree.segment_sum()),
        )
    elided = len(misses) - _MAX_LISTED_MISSES
    note = ""
    if elided > 0:
        note = f"{elided} further misses elided; "
    tally: dict[str, int] = {}
    for tree in misses:
        dom = tree.dominant_segment()
        name = dom[0] if dom is not None else "(no segments)"
        tally[name] = tally.get(name, 0) + 1
    note += "misses by dominant segment: " + ", ".join(
        f"{k}={tally[k]}" for k in sorted(tally, key=tally.get, reverse=True)  # type: ignore[arg-type]
    )
    t.note = note
    return t
