"""Trace contexts: the ids a request carries across layers.

A :class:`TraceContext` is the immutable (trace_id, span_id, parent_id)
triple stamped onto whatever crosses a layer boundary — a middleware
:class:`~repro.middleware.messages.Message`, a
:class:`~repro.cloud.request.TickRequest`, a two-phase migration
ticket. Ids come from an :class:`IdAllocator` seeded through
:func:`repro.sim.rng.seeded_rng`, so the same run always mints the
same ids and trace artifacts diff cleanly between runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import seeded_rng


@dataclass(frozen=True)
class TraceContext:
    """One position in a causal tree.

    Attributes
    ----------
    trace_id:
        The request's tree; every segment of one tick shares it.
    span_id:
        This segment/root's own id, unique within the tracer.
    parent_id:
        The span that caused this one, or ``None`` at the root.
    """

    trace_id: int
    span_id: int
    parent_id: int | None = None

    def child(self, span_id: int) -> TraceContext:
        """A context for work caused by this span."""
        return TraceContext(self.trace_id, span_id, self.span_id)

    def short(self) -> str:
        """Compact hex form for labels and error messages."""
        return f"{self.trace_id:08x}/{self.span_id:x}"


class IdAllocator:
    """Deterministic id mint for trace and span ids.

    Trace ids are drawn from a :func:`~repro.sim.rng.seeded_rng`
    stream (stable across runs for a given seed, spread over 32 bits
    so ids from differently-seeded runs rarely collide); span ids are
    a plain counter — dense, cheap, and unique per tracer.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = seeded_rng(seed)
        self._next_span = 0

    def new_trace_id(self) -> int:
        """A fresh 32-bit trace id."""
        return int(self._rng.integers(0, 2**32))

    def new_span_id(self) -> int:
        """The next span id (0, 1, 2, ...)."""
        sid = self._next_span
        self._next_span += 1
        return sid
