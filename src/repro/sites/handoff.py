"""The handoff control loop: mobility 2PC, leases, and the ladder.

The :class:`HandoffManager` closes the loop around everything else in
:mod:`repro.sites`:

* **Mobility handoff** — a periodic check asks the
  :class:`~repro.sites.selector.SiteSelector` where each session
  should be. When the answer differs from the incumbent (coverage
  degradation, or overload showing up as response time), the move is
  admission-checked at the destination and then executed by the real
  :class:`~repro.recovery.TwoPhaseMigrator` as a PREPARE/TRANSFER/
  COMMIT transaction over the backhaul — bounded retries, rollback to
  the source site, buffered in-order tick replay, all inherited.
* **Leases** — every session gets its own
  :class:`~repro.recovery.LeaseSupervisor` whose heartbeats ride the
  *tenant's own radio downlink* from the serving gateway. A site
  outage, a dead gateway, or plain coverage loss all silence the
  beats; the lease machinery sees only that silence, never fault
  state.
* **The ladder** — on lease expiry: abort anything in flight touching
  the dead gateway, then *evacuate* (a direct placement flip — the
  source cannot participate in 2PC when it is the thing that died) to
  a covering neighbor that admits the tenant with surge headroom; if
  none exists, *degrade* to ``all_local``. Degraded sessions
  re-offload when coverage returns and the cooldown has passed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cloud.admission import TenantSpec
from repro.compute.host import Host
from repro.recovery.checkpoint import CheckpointStore
from repro.recovery.config import RecoveryConfig
from repro.recovery.protocol import TwoPhaseMigrator
from repro.recovery.supervisor import LeaseSupervisor
from repro.sim.kernel import Process, Simulator
from repro.sites.selector import SiteSelector
from repro.sites.session import ALL_LOCAL, SessionTable, TenantSession
from repro.sites.topology import EdgeSite, SiteTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry


class _SessionHeartbeatFabric:
    """Heartbeat path for one session: serving gateway -> robot.

    Satisfies :class:`~repro.recovery.contracts.HeartbeatFabric`. The
    beat rides the tenant's radio downlink at the *current* site, so
    everything that silences data — a blocked radio (site outage /
    WAP death), leaving coverage, a dead gateway — silences
    supervision identically.
    """

    def __init__(self, session: TenantSession) -> None:
        self.session = session

    def heartbeat(
        self, src: Host, dst: Host, n_bytes: int, now: float
    ) -> float | None:
        site = self.session.site
        if site is None or src is not site.gateway or not src.up:
            return None
        if self.session.name not in site.radio.tenants():
            return None
        return site.radio.downlink_latency(self.session.name, n_bytes, now)


class HandoffManager:
    """Places, moves, evacuates and degrades every session in a city.

    Parameters
    ----------
    sim, topology, selector, table:
        The kernel, the city, the selection rule, and the session
        registry (also the 2PC substrate — its ``transport`` is the
        inter-site backhaul every migration phase rides).
    config:
        Recovery timeouts: heartbeat cadence, lease TTL, 2PC phase
        budgets, re-offload cooldown.
    check_period_s:
        Cadence of the mobility / re-offload check loop.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: SiteTopology,
        selector: SiteSelector,
        table: SessionTable,
        config: RecoveryConfig = RecoveryConfig(),
        check_period_s: float = 0.5,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.selector = selector
        self.table = table
        self.cfg = config
        self.check_period_s = check_period_s
        self.telemetry = telemetry
        self.store = CheckpointStore(max_versions=config.max_versions)
        self.migrator = TwoPhaseMigrator(
            table,
            self.store,
            config,
            on_commit=self._handoff_committed,
            on_abort=self._handoff_aborted,
            telemetry=telemetry,
        )
        self._supervisors: dict[str, LeaseSupervisor] = {}
        #: In-flight handoffs: tenant -> (src site, dest site).
        self._pending: dict[str, tuple[EdgeSite, EdgeSite]] = {}
        self._proc: Process | None = None
        # Ladder counters (experiment verdicts read these).
        self.handoffs = 0
        self.evacuations = 0
        self.degradations = 0
        self.reoffloads = 0
        self.lease_expiries = 0
        #: Committed handoff pauses (tick-stream blackout per handoff).
        self.handoff_pauses_s: list[float] = []

    # ------------------------------------------------------------------
    # Registration / initial placement
    # ------------------------------------------------------------------
    def add(self, session: TenantSession) -> EdgeSite | None:
        """Register ``session``, supervise it, and place it initially.

        Returns the serving site, or None when the tenant starts in a
        dead zone (or nothing admits it) and runs locally.
        """
        self.table.add(session)
        sup = LeaseSupervisor(
            self.sim,
            _SessionHeartbeatFabric(session),
            session.robot_host,
            self.cfg,
            telemetry=self.telemetry,
        )
        sup.on_expiry(
            lambda host_name, s=session: self._on_lease_expired(s, host_name)
        )
        sup.start()
        self._supervisors[session.name] = sup
        dest = self.selector.select(session.position())
        if dest is None or not self._admit(dest, session, surge=False):
            session.degrade()
            self.degradations += 1
            return None
        session.offload_to(dest)
        self._grant(session, dest)
        return dest

    def start(self) -> Process:
        """Begin the periodic mobility / re-offload check."""
        if self._proc is None:
            self._proc = self.sim.every(
                self.check_period_s, self._check, label="sites:handoff"
            )
        return self._proc

    # ------------------------------------------------------------------
    # The check loop
    # ------------------------------------------------------------------
    def _check(self) -> None:
        now = self.sim.now()
        for session in list(self.table.nodes.values()):
            if session.mode == ALL_LOCAL:
                self._maybe_reoffload(session, now)
                continue
            if session.name in self.migrator.inflight:
                continue
            cur = session.site
            if cur is None:
                continue
            best = self.selector.select(session.position(), current=cur.name)
            if best is None:
                # Coverage gone while the site is healthy (a dead zone):
                # degrade gracefully instead of waiting out the lease.
                self._release_placement(session)
                session.degrade()
                self.degradations += 1
                self._emit("site_degraded", tenant=session.name, why="no_coverage")
                continue
            if best is not cur:
                self._begin_handoff(session, cur, best)

    def _maybe_reoffload(self, session: TenantSession, now: float) -> None:
        if now - session.degraded_at < self.cfg.cooldown_s:
            return
        dest = self.selector.select(session.position())
        if dest is None or not self._admit(dest, session, surge=False):
            return
        session.offload_to(dest)
        self._grant(session, dest)
        self.reoffloads += 1
        self._emit("site_reoffload", tenant=session.name, site=dest.name)

    def _begin_handoff(
        self, session: TenantSession, src: EdgeSite, dest: EdgeSite
    ) -> None:
        decision = dest.controller.request_admission(
            self._requested_spec(session)
        )
        if not decision.admitted:
            return  # stay put; the incumbent still covers us
        ok = self.migrator.request(
            session.name, dest.gateway, decision.threads, reason="mobility"
        )
        if not ok:
            dest.controller.release(session.name)
            return
        self._pending[session.name] = (src, dest)

    # ------------------------------------------------------------------
    # 2PC outcomes
    # ------------------------------------------------------------------
    def _handoff_committed(self, name: str, dest_name: str, pause: float) -> None:
        session = self.table.nodes[name]
        src, dest = self._pending.pop(name)
        src.controller.release(name)
        self._grant(session, dest)
        self.handoffs += 1
        self.handoff_pauses_s.append(pause)
        self._emit(
            "site_handoff",
            tenant=name,
            src=src.name,
            dest=dest.name,
            pause_s=pause,
        )

    def _handoff_aborted(self, name: str, why: str) -> None:
        pending = self._pending.pop(name, None)
        if pending is not None:
            # Undo the destination's admission reservation; the session
            # itself was rolled back to the source by the migrator.
            pending[1].controller.release(name)
        self._emit("site_handoff_aborted", tenant=name, why=why)

    # ------------------------------------------------------------------
    # The ladder (lease expiry -> evacuate -> degrade -> re-offload)
    # ------------------------------------------------------------------
    def _on_lease_expired(self, session: TenantSession, host_name: str) -> None:
        self.lease_expiries += 1
        self.migrator.abort_for_host(host_name, "lease_expired")
        self._supervisors[session.name].release(host_name)
        old_site = self.topology.by_gateway(host_name)
        if old_site is not None:
            old_site.controller.release(session.name)
        dest = self.selector.select(session.position())
        if dest is not None and self._admit(dest, session, surge=True):
            # The source is unreachable — 2PC cannot run. Flip the
            # placement directly (the robot-side state is the replica)
            # and resume serving at the neighbor.
            session.offload_to(dest)
            session.evacuations += 1
            self.evacuations += 1
            self._grant(session, dest)
            self._emit(
                "site_evacuated", tenant=session.name, dest=dest.name
            )
            return
        session.degrade()
        self.degradations += 1
        self._emit("site_degraded", tenant=session.name, why="lease_expired")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _requested_spec(self, session: TenantSession) -> TenantSpec:
        return session.spec

    def _admit(
        self, site: EdgeSite, session: TenantSession, *, surge: bool
    ) -> bool:
        decision = site.controller.request_admission(
            self._requested_spec(session), surge=surge
        )
        if decision.admitted:
            session.threads = decision.threads
        return decision.admitted

    def _release_placement(self, session: TenantSession) -> None:
        if session.site is not None:
            session.site.controller.release(session.name)
        sup = self._supervisors[session.name]
        for host_name in list(sup.leases):
            sup.release(host_name)

    def _grant(self, session: TenantSession, dest: EdgeSite) -> None:
        sup = self._supervisors[session.name]
        for host_name in list(sup.leases):
            if host_name != dest.gateway.name:
                sup.release(host_name)
        sup.grant(dest.gateway)

    def _emit(self, kind: str, **fields: object) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(
                kind, t=self.sim.now(), track="sites", **fields
            )
