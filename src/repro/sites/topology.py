"""Edge-site topology: serving sites with coverage areas, and the
wired metro backhaul between them.

An :class:`EdgeSite` bundles everything one serving location owns: its
WAPs (and therefore its radio propagation footprint), a gateway host
that terminates the site's control plane, a :class:`~repro.cloud.pool.
WorkerPool` of serving VMs, the site's own Eq. 2c
:class:`~repro.cloud.admission.AdmissionController`, and optionally a
per-site :class:`~repro.cloud.autoscaler.Autoscaler`. A
:class:`SiteTopology` is the city: the registry the selector and the
handoff machinery query for coverage and health.

:class:`SiteBackhaul` is the wired fabric between site gateways — the
transport inter-site 2PC handoffs ride. Like
:class:`~repro.network.fabric.NetworkFabric`, a dead endpoint drops
datagrams (``send`` -> ``None``) and makes reliable round-trips burn
the full retransmission budget (``rtt`` -> a timeout-blowing constant),
so the migration protocol *observes* a site outage at whichever phase
runs after it instead of consulting an oracle.
"""

from __future__ import annotations

import math
import zlib
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.cloud import make_balancer, make_scheduler
from repro.cloud.admission import AdmissionController
from repro.cloud.pool import WorkerPool
from repro.compute.host import Host
from repro.compute.platform import CLOUD_SERVER, EDGE_GATEWAY, PlatformSpec
from repro.network.fabric import FleetRadioNetwork
from repro.network.signal import PathLossModel, WapSite
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.autoscaler import Autoscaler
    from repro.cloud.batching import BatchPolicy
    from repro.telemetry import Telemetry


def coverage_path_loss(coverage_radius_m: float) -> PathLossModel:
    """A path-loss model whose link-quality knee sits at the coverage edge.

    The default :class:`~repro.network.signal.PathLossModel` knees at
    ~14 m regardless of a site's declared coverage. Scaling transmit
    power so RSSI crosses the -76 dBm quality knee exactly at
    ``coverage_radius_m`` makes "covered" mean "usable radio": solid
    well inside the radius, unstable at the fringe, and dead only at
    ~1.7x the radius (where the MCS ladder bottoms out). A lease
    therefore survives a little *past* the coverage edge — long enough
    for a 2PC handoff to run inside an overlap region instead of
    every site transition going through lease expiry.
    """
    base = PathLossModel()
    tx = (
        -76.0
        + base.ref_loss_db
        + 10.0 * base.exponent * math.log10(coverage_radius_m)
    )
    return PathLossModel(tx_power_dbm=tx)


class EdgeSite:
    """One serving site: WAPs + gateway + pool + admission gate.

    Parameters
    ----------
    sim, name:
        The simulator and the site's (unique) name; hosts are named
        ``{name}-gw`` and ``{name}-vm{i}``.
    center:
        Site coordinates; WAPs sit at ``center + offset`` for each
        entry of ``wap_offsets``.
    coverage_radius_m:
        The OpenCDA-style coverage threshold: the site serves a tenant
        only while the tenant is within this distance of one of the
        site's WAPs.
    wired_latency_s:
        One-way WAP -> pool latency, also this site's share of any
        backhaul path.
    seed:
        Fleet-radio base seed; the site derives its own stream from it
        and its name, so per-site radios are independent but the whole
        city is a pure function of ``seed``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        center: tuple[float, float],
        *,
        coverage_radius_m: float = 16.0,
        wired_latency_s: float = 0.004,
        n_workers: int = 2,
        wap_offsets: Sequence[tuple[float, float]] = ((0.0, 0.0),),
        scheduler: str = "edf",
        balancer: str = "least-loaded",
        seed: int = 0,
        worker_platform: PlatformSpec = CLOUD_SERVER,
        telemetry: "Telemetry | None" = None,
        batching: "BatchPolicy | None" = None,
    ) -> None:
        if coverage_radius_m <= 0:
            raise ValueError(
                f"coverage_radius_m must be > 0, got {coverage_radius_m}"
            )
        self.sim = sim
        self.name = name
        self.x, self.y = center
        self.coverage_radius_m = coverage_radius_m
        self.wired_latency_s = wired_latency_s
        model = coverage_path_loss(coverage_radius_m)
        self.waps = tuple(
            WapSite(self.x + dx, self.y + dy, model) for dx, dy in wap_offsets
        )
        self.radio = FleetRadioNetwork(
            self.waps,
            wired_latency_s=wired_latency_s,
            seed=(seed * 1000003 + zlib.crc32(name.encode())) % 2**31,
        )
        self.gateway = Host(f"{name}-gw", EDGE_GATEWAY)
        hosts = [Host(f"{name}-vm{i}", worker_platform) for i in range(n_workers)]
        self.pool = WorkerPool(
            sim,
            hosts,
            make_scheduler(scheduler),
            make_balancer(balancer),
            telemetry=telemetry,
            batching=batching,
        )
        self.controller = AdmissionController(
            self.pool, network_latency_s=wired_latency_s, telemetry=telemetry
        )
        #: Optional per-site autoscaler; attach one with
        #: :meth:`attach_autoscaler` (None costs nothing).
        self.autoscaler: "Autoscaler | None" = None

    # ------------------------------------------------------------------
    # Geometry / health
    # ------------------------------------------------------------------
    def distance_to(self, xy: tuple[float, float]) -> float:
        """Distance from ``xy`` to the site's nearest WAP."""
        return min(w.distance_to(*xy) for w in self.waps)

    def covers(self, xy: tuple[float, float]) -> bool:
        """Whether ``xy`` is inside the site's coverage threshold."""
        return self.distance_to(xy) <= self.coverage_radius_m

    @property
    def up(self) -> bool:
        """Site health: gateway reachable and at least one worker live."""
        return self.gateway.up and self.pool.has_live_workers()

    def attach_autoscaler(self, scaler: "Autoscaler") -> "Autoscaler":
        """Install a per-site autoscaler (caller builds and starts it)."""
        self.autoscaler = scaler
        return scaler

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EdgeSite({self.name!r}, ({self.x}, {self.y}), "
            f"r={self.coverage_radius_m}, workers={len(self.pool.workers)})"
        )


class SiteTopology:
    """The city: every serving site, with coverage and health lookups."""

    def __init__(self, sites: Sequence[EdgeSite]) -> None:
        if not sites:
            raise ValueError("a SiteTopology needs at least one site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names: {names}")
        self.sites = tuple(sites)
        self._by_name = {s.name: s for s in self.sites}
        self._by_gateway = {s.gateway.name: s for s in self.sites}

    def site(self, name: str) -> EdgeSite:
        """The site called ``name`` (KeyError for unknown names)."""
        return self._by_name[name]

    def by_gateway(self, host_name: str) -> EdgeSite | None:
        """The site whose gateway host is ``host_name``, if any."""
        return self._by_gateway.get(host_name)

    def gateways(self) -> tuple[Host, ...]:
        """Every site's gateway host, in site order."""
        return tuple(s.gateway for s in self.sites)

    def covering(self, xy: tuple[float, float]) -> list[EdgeSite]:
        """Healthy sites covering ``xy``, nearest first (OpenCDA sort).

        Distance ties break on the site name, so the ordering — and
        everything downstream of it — is deterministic.
        """
        return sorted(
            (s for s in self.sites if s.up and s.covers(xy)),
            key=lambda s: (s.distance_to(xy), s.name),
        )

    def nearest(self, xy: tuple[float, float]) -> EdgeSite:
        """The nearest site regardless of coverage or health."""
        return min(self.sites, key=lambda s: (s.distance_to(xy), s.name))


class SiteBackhaul:
    """Wired metro fabric between site gateways (the 2PC transport).

    Parameters
    ----------
    topology:
        Site registry; each endpoint's site contributes its
        ``wired_latency_s`` to the path.
    base_latency_s:
        Metro-core crossing latency added to every inter-site path.
    bandwidth_bps:
        Serialization rate for bulk payloads (session-state transfers).
    dead_rtt_s:
        What a reliable round-trip to a dead gateway costs — the full
        retransmission budget, far beyond any phase timeout, mirroring
        :meth:`repro.network.fabric.NetworkFabric.reliable_send`.
    """

    def __init__(
        self,
        topology: SiteTopology,
        base_latency_s: float = 0.003,
        bandwidth_bps: float = 200e6,
        dead_rtt_s: float = 48.0,
    ) -> None:
        self.topology = topology
        self.base_latency_s = base_latency_s
        self.bandwidth_bps = bandwidth_bps
        self.dead_rtt_s = dead_rtt_s

    def _one_way(self, src: Host, dst: Host, n_bytes: int) -> float:
        lat = self.base_latency_s + 8.0 * n_bytes / self.bandwidth_bps
        for h in (src, dst):
            site = self.topology.by_gateway(h.name)
            if site is not None:
                lat += site.wired_latency_s
        return lat

    def send(self, src: Host, dst: Host, n_bytes: int, now: float) -> float | None:
        """Datagram latency gateway-to-gateway; None if an end is dead."""
        if src is dst:
            return 0.0
        if not src.up or not dst.up:
            return None
        return self._one_way(src, dst, n_bytes)

    def rtt(self, a: Host, b: Host, n_bytes: int, now: float) -> float:
        """Reliable round trip; a dead endpoint burns the retry budget."""
        if a is b:
            return 0.0
        if not a.up or not b.up:
            return self.dead_rtt_s
        return self._one_way(a, b, n_bytes) + self._one_way(b, a, 64)


def triangle_city(
    sim: Simulator,
    *,
    side_m: float = 50.0,
    coverage_radius_m: float = 16.0,
    n_workers: int = 2,
    scheduler: str = "edf",
    balancer: str = "least-loaded",
    seed: int = 0,
    telemetry: "Telemetry | None" = None,
    batching: "BatchPolicy | None" = None,
) -> SiteTopology:
    """Three sites on a triangle — the geo experiment's standard city.

    Sites sit at the vertices; the circuit along the edges passes
    through each site's footprint and, between footprints, through
    genuine dead zones (no site covers mid-edge when
    ``coverage_radius_m < side_m / 2``).
    """
    height = side_m * math.sqrt(3.0) / 2.0
    centers = {
        "siteA": (0.0, 0.0),
        "siteB": (side_m, 0.0),
        "siteC": (side_m / 2.0, height),
    }
    sites = [
        EdgeSite(
            sim,
            name,
            center,
            coverage_radius_m=coverage_radius_m,
            n_workers=n_workers,
            scheduler=scheduler,
            balancer=balancer,
            seed=seed,
            telemetry=telemetry,
            batching=batching,
        )
        for name, center in centers.items()
    ]
    return SiteTopology(sites)
