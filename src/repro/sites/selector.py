"""Site selection: the OpenCDA offloading-scheduler rule, made sticky.

The reference rule (the ``offloading_scheduler.py`` slice in the
related-work set) picks a serving base station in three steps: sort
candidates by distance, drop the ones beyond the coverage threshold,
then take the minimum *measured* response time among the survivors.
This selector reproduces that rule over :class:`~repro.sites.topology.
SiteTopology` and adds two things a driving fleet needs:

* **EWMA response times** — per-site observations (fed by each served
  tick) smooth into a stable ranking signal instead of per-packet
  noise. A never-observed covering site is scored *optimistically* at
  the best measured RT among the candidates (or 0 when nothing is
  measured yet), so unexplored coverage competes on distance instead
  of being unreachable — a driving tenant approaching a fresh site
  can hand off to it before ever being served there.
* **Hysteresis** — a tenant already placed on a covering site only
  moves on a decisive improvement in one of the two signals: the
  challenger's response time beats the incumbent's by ``hysteresis``
  (fractionally), or the challenger is closer by the same margin
  while its response time is no worse than the incumbent's (within
  the band). Marginal tenants on a coverage boundary therefore do not
  flap between sites; losing coverage (or the incumbent dying) still
  forces a move.
"""

from __future__ import annotations

from repro.sites.topology import EdgeSite, SiteTopology


class SiteSelector:
    """Nearest-with-coverage, then min observed response time, sticky."""

    def __init__(
        self,
        topology: SiteTopology,
        hysteresis: float = 0.15,
        alpha: float = 0.3,
    ) -> None:
        if not 0.0 <= hysteresis < 1.0:
            raise ValueError(f"hysteresis must be in [0, 1), got {hysteresis}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.topology = topology
        self.hysteresis = hysteresis
        self.alpha = alpha
        self._rt: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Measurement feed
    # ------------------------------------------------------------------
    def observe(self, site_name: str, response_time_s: float) -> None:
        """Fold one served tick's end-to-end latency into the EWMA."""
        prev = self._rt.get(site_name)
        self._rt[site_name] = (
            response_time_s
            if prev is None
            else (1.0 - self.alpha) * prev + self.alpha * response_time_s
        )

    def response_time(self, site_name: str) -> float | None:
        """The site's smoothed response time; None if never observed."""
        return self._rt.get(site_name)

    # ------------------------------------------------------------------
    # The rule
    # ------------------------------------------------------------------
    def select(
        self, xy: tuple[float, float], current: str | None = None
    ) -> EdgeSite | None:
        """Best serving site for a tenant at ``xy``; None = no coverage.

        ``current`` names the tenant's incumbent site, enabling the
        hysteresis band. Candidates are healthy covering sites only —
        a dead or out-of-range incumbent never survives selection.
        """
        covering = self.topology.covering(xy)
        if not covering:
            return None
        measured = [
            self._rt[s.name] for s in covering if s.name in self._rt
        ]
        floor = min(measured) if measured else 0.0

        def rt_of(s: EdgeSite) -> float:
            # Optimistic prior: an unexplored site is assumed as fast
            # as the best measured candidate, so it competes on
            # distance rather than being unreachable forever.
            return self._rt.get(s.name, floor)

        best = min(
            covering, key=lambda s: (rt_of(s), s.distance_to(xy), s.name)
        )
        if current is None:
            return best
        cur = next((s for s in covering if s.name == current), None)
        if cur is None or cur is best:
            return best
        if rt_of(best) < rt_of(cur) * (1.0 - self.hysteresis):
            return best  # decisively faster
        if (
            best.distance_to(xy) < cur.distance_to(xy) * (1.0 - self.hysteresis)
            and rt_of(best) <= rt_of(cur) * (1.0 + self.hysteresis)
        ):
            return best  # decisively closer, and not measurably slower
        return cur
