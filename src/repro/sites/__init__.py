"""Geo-distributed multi-edge serving with mobility handoff.

One :class:`~repro.cloud.pool.WorkerPool` behind one fabric was the
paper's world; this package models the city around it: several edge
**sites**, each with its own WAP set, coverage area, wired latency,
worker pool and admission gate (:class:`EdgeSite`,
:class:`SiteTopology`), connected by a wired metro backhaul
(:class:`SiteBackhaul`).

A driving tenant is represented by a :class:`TenantSession` — the unit
of placeable serving state. Sessions live in a :class:`SessionTable`,
which satisfies the :class:`~repro.recovery.contracts.MigrationGraph`
contract, so inter-site handoff is executed by the *real*
:class:`~repro.recovery.TwoPhaseMigrator` — PREPARE over the backhaul,
bounded transfer retries, deterministic rollback to the source site,
buffered in-order tick replay — not a re-implementation.

The :class:`SiteSelector` applies the OpenCDA offloading-scheduler
rule (sort sites by distance, coverage threshold, pick minimum
observed response time) with hysteresis, and the
:class:`HandoffManager` closes the loop: mobility handoffs as 2PC
transactions, per-tenant heartbeat leases over each tenant's own radio
downlink, and the degraded ladder for site-level faults — evacuate to
a covering neighbor, fall back to ``all_local`` in dead zones,
re-offload on re-entry. See ``docs/sites.md``.
"""

from repro.sites.handoff import HandoffManager
from repro.sites.selector import SiteSelector
from repro.sites.session import SessionTable, TenantSession
from repro.sites.topology import EdgeSite, SiteBackhaul, SiteTopology

__all__ = [
    "EdgeSite",
    "HandoffManager",
    "SessionTable",
    "SiteBackhaul",
    "SiteSelector",
    "SiteTopology",
    "TenantSession",
]
