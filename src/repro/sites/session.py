"""Per-tenant serving sessions: the unit an inter-site handoff moves.

A :class:`TenantSession` is the geo-serving analogue of
:class:`~repro.cloud.tenants.RobotTenant`: a periodic tick source for
one driving robot. Unlike a parked fleet tenant it owns a *placement*
— which :class:`~repro.sites.topology.EdgeSite` currently serves it —
expressed as its ``host`` (the serving site's gateway). Assigning a
new gateway re-associates the tenant's radio: detach from the old
site's :class:`~repro.network.fabric.FleetRadioNetwork`, attach to the
new one (each re-attach resumes that site's parked RNG stream, so
placement churn never desynchronizes the fading sequences).

The session implements the full
:class:`~repro.recovery.contracts.MigratableNode` surface —
``begin_pause(buffer=True)`` holds ticks issued mid-transfer,
``end_pause`` replays them in order at the *current* placement with
their original issue times (so a handoff's cost lands in the latency
record instead of vanishing), ``snapshot``/``restore`` model the
session state the transfer ships. A :class:`SessionTable` collects
sessions behind the :class:`~repro.recovery.contracts.MigrationGraph`
contract, which is what lets the unmodified
:class:`~repro.recovery.TwoPhaseMigrator` execute cross-site handoffs.

When no site covers (or admits) the tenant, the session runs in
``all_local`` mode: ticks execute on the robot's own silicon at
``local_vdp_s`` — slower, possibly past the deadline, but never
stranded.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud.admission import TenantSpec
from repro.cloud.request import TickRequest
from repro.cloud.tenants import _quantile
from repro.compute.host import Host
from repro.compute.platform import TURTLEBOT3_PI
from repro.network.link import PositionProvider
from repro.sim.kernel import Process, Simulator
from repro.sites.topology import EdgeSite, SiteTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sites.selector import SiteSelector

#: Placement modes (the serving half of the recovery ladder).
FULL_OFFLOAD = "full_offload"
ALL_LOCAL = "all_local"


@dataclass(frozen=True)
class GeoTenantStats:
    """One driving tenant's verdict after a geo-serving run."""

    tenant: str
    ticks: int
    served: int  # offloaded completions
    local_served: int  # degraded-mode completions
    lost: int
    handoffs: int  # committed 2PC placements
    evacuations: int  # direct placements after a lease expiry
    mean_latency_s: float
    p95_latency_s: float
    deadline_miss_rate: float  # over every completion, local included
    degraded_s: float  # total time spent in all_local

    @property
    def stranded(self) -> bool:
        """Ticked but never served anywhere — the forbidden outcome."""
        return self.ticks > 0 and self.served + self.local_served == 0


class TenantSession:
    """One mobile tenant: tick source + migratable placement.

    Parameters
    ----------
    sim, spec, topology:
        The kernel, the tenant's requested spec, and the city.
    position:
        Zero-arg callable returning the tenant's current (x, y); must
        be a pure function of virtual time for determinism.
    selector:
        Optional :class:`~repro.sites.selector.SiteSelector`; served
        ticks feed its per-site response-time EWMA.
    session_state_bytes:
        Modeled size of the serving session state (planner context,
        smoothing windows) a handoff must ship between pools.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: TenantSpec,
        topology: SiteTopology,
        position: PositionProvider,
        *,
        selector: "SiteSelector | None" = None,
        phase_s: float = 0.0,
        payload_bytes: int = 2940,
        reply_bytes: int = 64,
        session_state_bytes: int = 49152,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.topology = topology
        self.position = position
        self.selector = selector
        self.phase_s = phase_s
        self.payload_bytes = payload_bytes
        self.reply_bytes = reply_bytes
        self.session_state_bytes = session_state_bytes
        #: The robot end of heartbeats and (modeled) local execution.
        self.robot_host = Host(f"{spec.name}-lgv", TURTLEBOT3_PI, on_robot=True)

        # MigratableNode surface
        self.name = spec.name
        self.threads = spec.threads
        self.state_version = 0
        self._host: Host | None = None
        self._paused = False
        self._buffer: list[tuple[int, float]] | None = None

        #: The site behind :attr:`host` (None while local / unplaced).
        self.site: EdgeSite | None = None
        self.mode = ALL_LOCAL
        #: When the current degraded window opened (for cooldowns).
        self.degraded_at = 0.0
        self.degraded_windows: list[list[float | None]] = []

        # Serving record
        self.seq = 0
        self.served = 0
        self.local_served = 0
        self.lost = 0
        self.handoffs = 0
        self.evacuations = 0
        self.latencies: list[float] = []
        self.completion_times: list[float] = []
        #: (issued_at, latency | None, kind) per tick; kind is
        #: "offload" / "local" / "lost". The survival curves read this.
        self.tick_log: list[tuple[float, float | None, str]] = []
        self._proc: Process | None = None

    # ------------------------------------------------------------------
    # Placement (MigratableNode: host is where the session runs)
    # ------------------------------------------------------------------
    @property
    def host(self) -> Host | None:
        return self._host

    @host.setter
    def host(self, value: Host | None) -> None:
        if value is self._host:
            return
        old_site = self.site
        self._host = value
        new_site = (
            self.topology.by_gateway(value.name) if value is not None else None
        )
        if new_site is old_site:
            return
        if old_site is not None and self.name in old_site.radio.tenants():
            old_site.radio.detach(self.name)
        self.site = new_site
        if new_site is not None:
            new_site.radio.attach(self.name, self.position)

    def begin_pause(self, buffer: bool = False) -> None:
        """Freeze tick issue; ``buffer=True`` holds ticks for replay."""
        if self._paused:
            return
        self._paused = True
        self._buffer = [] if buffer else None

    def end_pause(self) -> None:
        """Resume; buffered ticks re-issue in order at the new placement.

        Replayed ticks keep their original issue times, so the pause a
        handoff cost shows up as latency (and possibly deadline
        misses) instead of silently disappearing.
        """
        if not self._paused:
            return
        self._paused = False
        buffered, self._buffer = self._buffer, None
        if buffered:
            for seq, issued_at in buffered:
                self._issue(seq, issued_at)

    def snapshot(self) -> object | None:
        """The session state a transfer ships (progress marker)."""
        return {"seq": self.seq}

    def restore(self, state: object) -> None:
        """Rollback hook: serving counters live robot-side, so restoring
        the pre-transfer snapshot is a structural no-op (idempotent)."""

    def state_size_bytes(self) -> int:
        return self.session_state_bytes

    # ------------------------------------------------------------------
    # Mode ladder (driven by the HandoffManager)
    # ------------------------------------------------------------------
    def degrade(self) -> None:
        """Enter ``all_local``: detach the radio, open a degraded window."""
        if self.mode == ALL_LOCAL and self._host is None:
            return
        now = self.sim.now()
        self.host = None  # setter detaches the radio
        self.mode = ALL_LOCAL
        self.degraded_at = now
        self.degraded_windows.append([now, None])

    def offload_to(self, site: EdgeSite) -> None:
        """(Re-)enter ``full_offload`` on ``site``; closes any window."""
        now = self.sim.now()
        if self.mode == ALL_LOCAL and self.degraded_windows:
            window = self.degraded_windows[-1]
            if window[1] is None:
                window[1] = now
        self.mode = FULL_OFFLOAD
        self.host = site.gateway

    def degraded_s(self, horizon: float) -> float:
        """Total seconds spent degraded, open windows clipped at horizon."""
        total = 0.0
        for start, end in self.degraded_windows:
            assert start is not None
            total += (end if end is not None else horizon) - start
        return total

    # ------------------------------------------------------------------
    # Ticking
    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Begin ticking at the spec's rate, offset by the phase."""
        self._proc = self.sim.every(
            self.spec.deadline_s,
            self._tick,
            label=f"geo:{self.name}",
            start_delay=self.phase_s,
        )
        return self._proc

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    def _tick(self) -> None:
        now = self.sim.now()
        self.seq += 1
        if self._paused:
            if self._buffer is not None:
                self._buffer.append((self.seq, now))
            return
        self._issue(self.seq, now)

    def _issue(self, seq: int, issued_at: float) -> None:
        now = self.sim.now()
        site = self.site
        if self.mode == ALL_LOCAL or site is None:
            # Note: no ``site.up`` check — the tenant cannot see a site
            # die, only its radio can. Ticks into a dead site are lost
            # until the lease expires and the ladder reacts.
            self._serve_local(issued_at)
            return
        req = TickRequest(
            tenant=self.name,
            seq=seq,
            cycles=self.spec.cycles,
            threads=self.threads,
            deadline_s=self.spec.deadline_s,
            issued_at=issued_at,
            profile=self.spec.profile,
            payload_bytes=self.payload_bytes,
            reply_bytes=self.reply_bytes,
        )
        up = site.radio.uplink_latency(self.name, self.payload_bytes, now)
        if up is None:
            self.lost += 1
            self.tick_log.append((issued_at, None, "lost"))
            return
        pool = site.pool
        served_by = site.name
        self.sim.schedule_after(
            up,
            lambda: pool.submit(
                req, lambda r, t: self._completed(served_by, r, t)
            ),
            label=f"uplink:{self.name}",
        )

    def _serve_local(self, issued_at: float) -> None:
        """Degraded tick: the robot's own silicon, at local_vdp_s."""

        def finish() -> None:
            t = self.sim.now()
            self.local_served += 1
            self.completion_times.append(t)
            self.tick_log.append((issued_at, t - issued_at, "local"))

        self.sim.schedule_after(
            self.spec.local_vdp_s, finish, label=f"local:{self.name}"
        )

    def _completed(self, served_by: str, req: TickRequest, t: float) -> None:
        site = self.site
        if site is None or self.name not in site.radio.tenants():
            # Completed server-side, but the tenant has left the radio
            # (degraded or mid-evacuation): the reply has nowhere to go.
            self.lost += 1
            self.tick_log.append((req.issued_at, None, "lost"))
            return
        down = site.radio.downlink_latency(self.name, self.reply_bytes, t)
        if down is None:
            self.lost += 1
            self.tick_log.append((req.issued_at, None, "lost"))
            return
        t += down
        latency = t - req.issued_at
        self.served += 1
        self.latencies.append(latency)
        self.completion_times.append(t)
        self.tick_log.append((req.issued_at, latency, "offload"))
        if self.selector is not None:
            self.selector.observe(served_by, latency)

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    def stats(self, horizon: float) -> GeoTenantStats:
        lats = sorted(self.latencies)
        mean = sum(lats) / len(lats) if lats else math.nan
        completions = [
            lat for _, lat, kind in self.tick_log if kind in ("offload", "local")
        ]
        misses = sum(
            1 for lat in completions if lat is not None and lat > self.spec.deadline_s
        )
        return GeoTenantStats(
            tenant=self.name,
            ticks=self.seq,
            served=self.served,
            local_served=self.local_served,
            lost=self.lost,
            handoffs=self.handoffs,
            evacuations=self.evacuations,
            mean_latency_s=mean,
            p95_latency_s=_quantile(lats, 0.95),
            deadline_miss_rate=misses / len(completions) if completions else 1.0,
            degraded_s=self.degraded_s(horizon),
        )

    def max_service_gap_s(self, horizon: float) -> float:
        """Longest interval with no completion at all (stranding probe).

        Brackets the run: the gap before the first completion and
        after the last one both count, so a tenant that dies mid-run
        shows a tail gap instead of looking healthy.
        """
        events = sorted(self.completion_times)
        edges = [0.0, *events, horizon]
        return max(b - a for a, b in zip(edges, edges[1:]))


class SessionTable:
    """Sessions behind the :class:`MigrationGraph` contract.

    This is the object handed to :class:`~repro.recovery.
    TwoPhaseMigrator` in place of a middleware graph: ``nodes`` maps
    tenant names to sessions, ``transport`` is the inter-site
    backhaul, and the migration ledger doubles as the handoff counter.
    """

    def __init__(self, sim: Simulator, transport: object) -> None:
        self.sim = sim
        self.transport = transport
        self.nodes: dict[str, TenantSession] = {}
        #: Fault hook (MigrationGraph contract); sites leave it unset.
        self.migration_fault: (
            Callable[[Host, Host, float, int, float], float] | None
        ) = None
        #: (t, tenant, src_gateway, dest_gateway, reason) per commit.
        self.migrations: list[tuple[float, str, str, str, str]] = []

    def add(self, session: TenantSession) -> TenantSession:
        if session.name in self.nodes:
            raise ValueError(f"session {session.name!r} already registered")
        self.nodes[session.name] = session
        return session

    def _record_migration(
        self,
        name: str,
        old_host: Host,
        new_host: Host,
        pause: float,
        state_bytes: int,
        reason: str,
    ) -> None:
        self.migrations.append(
            (self.sim.now(), name, old_host.name, new_host.name, reason)
        )
        self.nodes[name].handoffs += 1
