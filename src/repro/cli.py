"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list
    python -m repro table1 table2 fig11
    python -m repro all            # everything (the Fig. 13 matrix is slow)

Each artifact prints its regenerated table or ASCII chart.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    run_ablation_migration_granularity,
    run_fig7,
    run_ablation_netqual_metric,
    run_ablation_velocity_adaptation,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_table1,
    run_table2,
    run_table3,
)

#: Artifact name -> (runner, description).
ARTIFACTS: dict[str, tuple[Callable[[], object], str]] = {
    "table1": (run_table1, "component power budgets (input data)"),
    "table2": (run_table2, "cycle breakdown + ECN identification (~1 min)"),
    "table3": (run_table3, "platform specifications"),
    "fig7": (run_fig7, "UDP kernel-buffer discard trace"),
    "fig9": (run_fig9, "ECN (SLAM) acceleration sweep"),
    "fig10": (run_fig10, "VDP acceleration sweep"),
    "fig11": (run_fig11, "network robustness A->C->A drive"),
    "fig12": (run_fig12, "max velocity under five deployments (~30 s)"),
    "fig13": (run_fig13, "end-to-end energy & time matrix (slow, ~3 min)"),
    "fig14": (run_fig14, "max-vs-real velocity gap"),
    "ablation-netqual": (run_ablation_netqual_metric, "Algorithm 2 vs latency threshold"),
    "ablation-granularity": (run_ablation_migration_granularity, "fine-grained vs whole offload"),
    "ablation-velocity": (run_ablation_velocity_adaptation, "Eq. 2c on/off"),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the IPDPS'21 LGV offloading paper.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        help="artifact names (see 'list'), or 'all', or 'list'",
    )
    args = parser.parse_args(argv)

    names = list(args.artifacts)
    if "list" in names:
        width = max(len(n) for n in ARTIFACTS)
        for name, (_, desc) in ARTIFACTS.items():
            print(f"  {name:<{width}}  {desc}")
        return 0
    if "all" in names:
        names = list(ARTIFACTS)

    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)} — try 'list'", file=sys.stderr)
        return 2

    for name in names:
        runner, _ = ARTIFACTS[name]
        print(f"\n######## {name} ########")
        t0 = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"[{name} regenerated in {elapsed:.1f} s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
