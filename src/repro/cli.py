"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list
    python -m repro table1 table2 fig11
    python -m repro all            # everything (the Fig. 13 matrix is slow)
    python -m repro fig12 --trace-out fig12_trace.json
    python -m repro trace fig9 --trace-out /tmp/t.json --metrics-out /tmp/m.json
    python -m repro fleet --robots 16 --workers 2 --scheduler edf --fleet-out cap.json
    python -m repro fleet --hybrid --tenants 100000 --focal 16 --fleet-out hybrid.json

Each artifact prints its regenerated table or ASCII chart. With
``--trace-out`` / ``--metrics-out`` (or the ``trace`` command, which
implies both) the run is instrumented: a Chrome trace-event JSON —
loadable at https://ui.perfetto.dev — and a metrics snapshot are
written, and a telemetry report is printed after the artifact output.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable

from repro.cloud import SCHEDULER_NAMES
from repro.experiments import (
    run_ablation_migration_granularity,
    run_chaos,
    run_fig7,
    run_fleet,
    run_ablation_netqual_metric,
    run_ablation_velocity_adaptation,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_geo,
    run_recovery,
    run_table1,
    run_table2,
    run_table3,
)
from repro.telemetry import Telemetry, render_report

#: Artifact name -> (runner, description). Every runner accepts an
#: optional ``telemetry=`` sink.
ARTIFACTS: dict[str, tuple[Callable[..., object], str]] = {
    "table1": (run_table1, "component power budgets (input data)"),
    "table2": (run_table2, "cycle breakdown + ECN identification (~1 min)"),
    "table3": (run_table3, "platform specifications"),
    "fig7": (run_fig7, "UDP kernel-buffer discard trace"),
    "fig9": (run_fig9, "ECN (SLAM) acceleration sweep"),
    "fig10": (run_fig10, "VDP acceleration sweep"),
    "fig11": (run_fig11, "network robustness A->C->A drive"),
    "fig12": (run_fig12, "max velocity under five deployments (~30 s)"),
    "fig13": (run_fig13, "end-to-end energy & time matrix (slow, ~3 min)"),
    "fig14": (run_fig14, "max-vs-real velocity gap"),
    "chaos": (run_chaos, "single-fault chaos matrix, adaptive vs static (~4 min)"),
    "recover": (run_recovery, "chaos-recovery cells with repro.recovery attached (~2 min)"),
    "fleet": (run_fleet, "fleet capacity curve: admission control vs admit-all"),
    "geo": (run_geo, "geo-distributed multi-site serving with mobility handoff (~1 min)"),
    "ablation-netqual": (run_ablation_netqual_metric, "Algorithm 2 vs latency threshold"),
    "ablation-granularity": (run_ablation_migration_granularity, "fine-grained vs whole offload"),
    "ablation-velocity": (run_ablation_velocity_adaptation, "Eq. 2c on/off"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the IPDPS'21 LGV offloading paper.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        help="artifact names (see 'list'), or 'all', or 'list'; "
        "prefix with 'trace' to force instrumented runs",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON (open in Perfetto) and enable telemetry",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a metrics snapshot JSON and enable telemetry",
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="record causal request traces and print the critical-path "
        "report (which segment each deadline miss spent its budget in)",
    )
    parser.add_argument(
        "--kernel-profile-out",
        metavar="PATH",
        default=None,
        help="profile the DES kernel (wall time per event label, heap "
        "churn, causal stacks) and write the merged JSON profile",
    )
    fleet = parser.add_argument_group("fleet", "options for the 'fleet' artifact")
    fleet.add_argument(
        "--robots",
        type=int,
        default=24,
        metavar="K",
        help="fleet sizes to sweep (1..K) for 'fleet' (default: 24)",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="pool workers serving the fleet (default: 2)",
    )
    fleet.add_argument(
        "--scheduler",
        choices=SCHEDULER_NAMES,
        default=None,
        help="per-worker serving discipline for 'fleet' "
        "(default: edf; ps under --hybrid, the validated fidelity config)",
    )
    fleet.add_argument(
        "--seed",
        type=int,
        default=0,
        help="radio randomness seed for 'fleet' (default: 0)",
    )
    fleet.add_argument(
        "--fleet-out",
        metavar="PATH",
        default=None,
        help="write the fleet capacity curve (or hybrid result) as canonical JSON",
    )
    fleet.add_argument(
        "--hybrid",
        action="store_true",
        help="hybrid fluid/DES mode: --focal tenants in full DES, the "
        "rest as calibrated fluid background (see docs/hybrid.md)",
    )
    fleet.add_argument(
        "--tenants",
        type=int,
        default=10_000,
        metavar="N",
        help="total fleet size for --hybrid (default: 10000)",
    )
    fleet.add_argument(
        "--focal",
        type=int,
        default=8,
        metavar="K",
        help="focal tenants simulated in full DES for --hybrid (default: 8)",
    )
    fleet.add_argument(
        "--bg-jitter",
        type=float,
        default=0.0,
        metavar="F",
        help="fractional fluid-demand fluctuation per re-calibration, "
        "seeded from --seed (default: 0, no jitter)",
    )
    fleet.add_argument(
        "--batch-size",
        type=int,
        default=0,
        metavar="B",
        help="worker-side batching: coalesce up to B compatible requests "
        "per execution (default: 0, batching off)",
    )
    fleet.add_argument(
        "--batch-wait-ms",
        type=float,
        default=20.0,
        metavar="MS",
        help="max staging wait for a batch's first request (default: 20)",
    )
    fleet.add_argument(
        "--batch-amortization",
        type=float,
        default=0.25,
        metavar="A",
        help="marginal cost fraction of each extra batched request "
        "(default: 0.25)",
    )
    geo = parser.add_argument_group("geo", "options for the 'geo' artifact")
    geo.add_argument(
        "--geo-out",
        metavar="PATH",
        default=None,
        help="write the geo-resilience matrix as canonical JSON",
    )
    geo.add_argument(
        "--geo-robots",
        type=int,
        default=6,
        metavar="K",
        help="vehicles looping the triangle city (default: 6)",
    )
    geo.add_argument(
        "--geo-background",
        type=int,
        default=0,
        metavar="N",
        help="fluid background tenants split across the site pools "
        "(default: 0, off)",
    )
    recover = parser.add_argument_group("recover", "options for the 'recover' artifact")
    recover.add_argument(
        "--recover-out",
        metavar="PATH",
        default=None,
        help="write the chaos-recovery result as canonical JSON",
    )
    fig9 = parser.add_argument_group("fig9", "options for the 'fig9' artifact")
    fig9.add_argument(
        "--fig9-out",
        metavar="PATH",
        default=None,
        help="write the fig9 sweep as canonical JSON (determinism harness)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)

    names = list(args.artifacts)
    trace_mode = False
    if names and names[0] == "trace":
        trace_mode = True
        names = names[1:]
        if not names:
            print("'trace' needs at least one artifact name — try 'list'", file=sys.stderr)
            return 2
    if "list" in names:
        width = max(len(n) for n in ARTIFACTS)
        for name, (_, desc) in ARTIFACTS.items():
            print(f"  {name:<{width}}  {desc}")
        return 0
    if "all" in names:
        names = list(ARTIFACTS)

    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)} — try 'list'", file=sys.stderr)
        return 2

    tel: Telemetry | None = None
    if trace_mode or args.trace_out or args.metrics_out or args.critical_path:
        tel = Telemetry()
    if tel is not None and (trace_mode or args.critical_path):
        # Instrumented runs carry the obs layer: causal request traces
        # (one tree per tick) plus the streaming SLO monitor.
        tel.enable_obs(seed=args.seed)
        tel.enable_slo()

    profilers = None
    if args.kernel_profile_out:
        from repro.sim.kernel import Simulator

        profilers = Simulator.install_default_profiling()

    batching = None
    if args.batch_size >= 1:
        from repro.cloud import BatchPolicy

        batching = BatchPolicy(
            max_size=args.batch_size,
            max_wait_s=args.batch_wait_ms / 1000.0,
            amortization=args.batch_amortization,
        )

    for name in names:
        runner, _ = ARTIFACTS[name]
        kwargs: dict[str, object] = {}
        if name == "fleet" and args.hybrid:
            from repro.hybrid import run_fleet_hybrid

            runner = run_fleet_hybrid
            kwargs = {
                "tenants": args.tenants,
                "focal": args.focal,
                "workers": args.workers,
                "scheduler": args.scheduler or "ps",
                "seed": args.seed,
                "jitter": args.bg_jitter,
                "batching": batching,
            }
        elif name == "fleet":
            kwargs = {
                "robots": args.robots,
                "workers": args.workers,
                "scheduler": args.scheduler or "edf",
                "seed": args.seed,
                "batching": batching,
            }
        elif name == "geo":
            kwargs = {
                "robots": args.geo_robots,
                "seed": args.seed,
                "background": args.geo_background,
            }
        if tel is not None:
            kwargs["telemetry"] = tel
        print(f"\n######## {name} ########")
        t0 = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"[{name} regenerated in {elapsed:.1f} s]")
        if name == "fleet" and args.fleet_out:
            p = result.write_json(args.fleet_out)
            print(f"[fleet capacity JSON written to {p}]")
        if name == "recover" and args.recover_out:
            p = result.write_json(args.recover_out)
            print(f"[chaos-recovery JSON written to {p}]")
        if name == "geo" and args.geo_out:
            p = result.write_json(args.geo_out)
            print(f"[geo-resilience JSON written to {p}]")
        if name == "fig9" and args.fig9_out:
            p = result.write_json(args.fig9_out)
            print(f"[fig9 sweep JSON written to {p}]")

    if profilers is not None:
        from repro.obs.profiler import aggregate_profiles
        from repro.sim.kernel import Simulator

        Simulator.clear_default_profiling()
        import json

        profile = aggregate_profiles(profilers)
        with open(args.kernel_profile_out, "w") as f:
            json.dump(profile, f, indent=1, sort_keys=True)
        print(
            f"[kernel profile written to {args.kernel_profile_out} — "
            f"{profile['simulators']} simulator(s), {profile['events']} events, "
            f"{profile['wall_us_per_event']:.1f} us/event]"
        )

    if tel is not None and args.critical_path:
        from repro.obs.analyze import critical_path_report

        print()
        print("######## critical path ########")
        if tel.requests is None or len(tel.requests) == 0:
            print(
                "no request traces recorded — nothing crossed an "
                "obs-instrumented path in this run"
            )
        else:
            print(critical_path_report(tel.requests))

    if tel is not None:
        trace_out = args.trace_out or (f"{'_'.join(names)}_trace.json" if trace_mode else None)
        metrics_out = args.metrics_out or (
            f"{'_'.join(names)}_metrics.json" if trace_mode else None
        )
        if trace_out:
            p = tel.write_trace(trace_out)
            print(f"[trace written to {p} — open in https://ui.perfetto.dev]")
        if metrics_out:
            p = tel.write_metrics(metrics_out)
            print(f"[metrics written to {p}]")
        print()
        print(render_report(tel))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
