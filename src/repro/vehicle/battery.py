"""Battery model.

A Turtlebot3 ships an 11.1 V / 1800 mAh LiPo — 19.98 Wh, the number
the paper's introduction leads with. The battery integrates drawn
power and reports remaining charge; a drained battery is a mission
failure condition.
"""

from __future__ import annotations


class Battery:
    """Finite energy store measured in watt-hours."""

    def __init__(self, capacity_wh: float = 19.98) -> None:
        if capacity_wh <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_wh}")
        self.capacity_wh = float(capacity_wh)
        self.drawn_j = 0.0

    @property
    def capacity_j(self) -> float:
        """Capacity in joules (1 Wh = 3600 J)."""
        return self.capacity_wh * 3600.0

    def draw(self, energy_j: float) -> None:
        """Consume ``energy_j`` joules; clips at empty."""
        if energy_j < 0:
            raise ValueError(f"energy must be non-negative, got {energy_j}")
        self.drawn_j = min(self.drawn_j + energy_j, self.capacity_j)

    @property
    def remaining_j(self) -> float:
        """Joules left."""
        return self.capacity_j - self.drawn_j

    @property
    def state_of_charge(self) -> float:
        """Fraction of capacity remaining, in [0, 1]."""
        return self.remaining_j / self.capacity_j

    @property
    def depleted(self) -> bool:
        """True once the battery is fully drained."""
        return self.remaining_j <= 0.0

    def runtime_at_power(self, power_w: float) -> float:
        """Seconds of operation left at a constant ``power_w`` draw."""
        if power_w <= 0:
            return float("inf")
        return self.remaining_j / power_w
