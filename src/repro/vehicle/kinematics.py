"""Differential-drive kinematics.

The LGV is modeled as a unicycle: commanded (v, w) are tracked subject
to acceleration limits, then the pose is integrated with the exact
constant-twist (arc) solution, which stays accurate at the coarse
control periods the simulation runs at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.world.geometry import Pose2D, normalize_angle


@dataclass(frozen=True)
class DiffDriveState:
    """Instantaneous kinematic state of the vehicle."""

    pose: Pose2D
    v: float = 0.0  # linear velocity, m/s
    w: float = 0.0  # angular velocity, rad/s

    def speed(self) -> float:
        """Magnitude of linear velocity."""
        return abs(self.v)


def _approach(current: float, target: float, max_delta: float) -> float:
    """Move ``current`` toward ``target`` by at most ``max_delta``."""
    if target > current:
        return min(target, current + max_delta)
    return max(target, current - max_delta)


def step_diff_drive(
    state: DiffDriveState,
    cmd_v: float,
    cmd_w: float,
    dt: float,
    max_accel: float = 2.5,
    max_ang_accel: float = 3.2,
    v_limit: float | None = None,
    w_limit: float | None = None,
) -> DiffDriveState:
    """Advance the vehicle ``dt`` seconds toward command (cmd_v, cmd_w).

    Velocities slew toward the command under acceleration limits, then
    the pose integrates along the resulting circular arc. Limits match
    a Turtlebot3 Burger (0.22 m/s, 2.84 rad/s) unless overridden.
    """
    if dt < 0:
        raise ValueError(f"dt must be non-negative, got {dt}")
    if v_limit is not None:
        cmd_v = max(-v_limit, min(v_limit, cmd_v))
    if w_limit is not None:
        cmd_w = max(-w_limit, min(w_limit, cmd_w))

    v = _approach(state.v, cmd_v, max_accel * dt)
    w = _approach(state.w, cmd_w, max_ang_accel * dt)

    x, y, th = state.pose.x, state.pose.y, state.pose.theta
    if abs(w) < 1e-9:
        x += v * math.cos(th) * dt
        y += v * math.sin(th) * dt
    else:
        # exact arc integration
        r = v / w
        x += r * (math.sin(th + w * dt) - math.sin(th))
        y += -r * (math.cos(th + w * dt) - math.cos(th))
    th = normalize_angle(th + w * dt)
    return DiffDriveState(pose=Pose2D(x, y, th), v=v, w=w)


def stop(state: DiffDriveState) -> DiffDriveState:
    """The same pose with all motion zeroed (emergency stop)."""
    return replace(state, v=0.0, w=0.0)
