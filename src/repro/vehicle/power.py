"""Per-component power draws (paper Table I).

Table I gives the *maximum* power of each hardware component for three
commodity LGVs. The sensor and microcontroller draw near-constant
power whenever on; motors and the embedded computer vary with load and
are modeled elsewhere (:mod:`repro.vehicle.motor`,
:mod:`repro.compute.energy`). These records also regenerate Table I
itself.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentPower:
    """Maximum power (W) of each LGV hardware component."""

    robot: str
    sensor_w: float
    motor_w: float
    microcontroller_w: float
    embedded_computer_w: float

    def total_w(self) -> float:
        """Sum of the four component maxima."""
        return self.sensor_w + self.motor_w + self.microcontroller_w + self.embedded_computer_w

    def fractions(self) -> dict[str, float]:
        """Each component's share of the total (Table I's percentages)."""
        tot = self.total_w()
        return {
            "sensor": self.sensor_w / tot,
            "motor": self.motor_w / tot,
            "microcontroller": self.microcontroller_w / tot,
            "embedded_computer": self.embedded_computer_w / tot,
        }


#: Table I, row "Turtlebot2": 2.5 / 9 / 4.6 / 15 W.
TURTLEBOT2_POWER = ComponentPower("Turtlebot2", 2.5, 9.0, 4.6, 15.0)

#: Table I, row "Turtlebot3": 1 / 6.7 / 1 / 6.5 W.
TURTLEBOT3_POWER = ComponentPower("Turtlebot3", 1.0, 6.7, 1.0, 6.5)

#: Table I, row "Pioneer 3DX": 0.82 / 10.6 / 4.6 / 15 W.
PIONEER3DX_POWER = ComponentPower("Pioneer 3DX", 0.82, 10.6, 4.6, 15.0)


@dataclass
class PowerBudget:
    """Running energy tally per component (J), the Fig. 13 bar stack."""

    sensor_j: float = 0.0
    motor_j: float = 0.0
    microcontroller_j: float = 0.0
    embedded_computer_j: float = 0.0
    wireless_j: float = 0.0

    def total_j(self) -> float:
        """Total robot-side energy (Eq. 1a's E_total)."""
        return (
            self.sensor_j
            + self.motor_j
            + self.microcontroller_j
            + self.embedded_computer_j
            + self.wireless_j
        )

    def as_dict(self) -> dict[str, float]:
        """Component -> joules, for tables and plots."""
        return {
            "sensor": self.sensor_j,
            "motor": self.motor_j,
            "microcontroller": self.microcontroller_j,
            "embedded_computer": self.embedded_computer_j,
            "wireless": self.wireless_j,
        }

    def add(self, other: PowerBudget) -> PowerBudget:
        """Elementwise sum (combining mission segments)."""
        return PowerBudget(
            self.sensor_j + other.sensor_j,
            self.motor_j + other.motor_j,
            self.microcontroller_j + other.microcontroller_j,
            self.embedded_computer_j + other.embedded_computer_j,
            self.wireless_j + other.wireless_j,
        )
