"""Motor power model (Eq. 1d).

``P_m(t) = P_l + m (a + g mu) v`` — a transforming loss plus traction
power proportional to velocity, following Mei et al.'s mobile-robot
energy study (the paper's citation for this equation). The friction
term dominates, so motor *energy* is roughly proportional to distance
— which is why Fig. 13's motor bars barely move across deployments:
a faster mission draws more motor power for proportionally less time.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Standard gravity (m/s^2).
G = 9.81


@dataclass(frozen=True)
class MotorModel:
    """Motor/traction power model for a wheeled LGV.

    Attributes
    ----------
    mass_kg:
        Vehicle mass ``m``.
    friction_mu:
        Ground rolling-friction coefficient ``mu``.
    transform_loss_w:
        Fixed conversion loss ``P_l`` drawn whenever motors are powered.
    max_power_w:
        Rated ceiling (Table I); power is clipped here.
    """

    mass_kg: float = 1.0
    friction_mu: float = 0.6
    transform_loss_w: float = 0.5
    max_power_w: float = 6.7

    def power(self, v: float, a: float = 0.0) -> float:
        """Instantaneous motor power (W) at speed ``v`` and accel ``a``.

        Deceleration does not regenerate: the traction term is floored
        at zero (cheap DC drives dissipate, not recover).
        """
        traction = self.mass_kg * (a + G * self.friction_mu) * abs(v)
        p = self.transform_loss_w + max(traction, 0.0)
        return min(p, self.max_power_w)

    def energy(self, v: float, a: float, dt: float) -> float:
        """Energy (J) over an interval of length ``dt`` at constant (v, a)."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        return self.power(v, a) * dt
