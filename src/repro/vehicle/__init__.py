"""The LGV physical model: kinematics, motors, battery, component power.

This package is the stand-in for the physical Turtlebot3: a
differential-drive body whose motor power follows Eq. 1d
(``P_m = P_l + m (a + g mu) v``), component power draws from Table I,
and a finite battery.
"""

from repro.vehicle.battery import Battery
from repro.vehicle.kinematics import DiffDriveState, step_diff_drive
from repro.vehicle.motor import MotorModel
from repro.vehicle.power import ComponentPower, PowerBudget, TURTLEBOT3_POWER, TURTLEBOT2_POWER, PIONEER3DX_POWER
from repro.vehicle.robot import LGV, RobotProfile, TURTLEBOT3_PROFILE

__all__ = [
    "Battery",
    "DiffDriveState",
    "step_diff_drive",
    "MotorModel",
    "ComponentPower",
    "PowerBudget",
    "TURTLEBOT3_POWER",
    "TURTLEBOT2_POWER",
    "PIONEER3DX_POWER",
    "LGV",
    "RobotProfile",
    "TURTLEBOT3_PROFILE",
]
