"""The assembled LGV: body, sensors, power accounting, world coupling.

The :class:`LGV` owns the ground-truth kinematic state, the lidar, the
battery, and the per-component energy tally. A simulation process
steps it at a fixed physics rate; nodes never touch ground truth
directly — they see it only through sensor messages, like the real
robot's software stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vehicle.battery import Battery
from repro.vehicle.kinematics import DiffDriveState, step_diff_drive
from repro.vehicle.motor import MotorModel
from repro.vehicle.power import ComponentPower, PowerBudget, TURTLEBOT3_POWER
from repro.world.geometry import Pose2D
from repro.world.grid import OccupancyGrid
from repro.world.lidar import LDS01_SPEC, Lidar, LidarScan, LidarSpec


@dataclass(frozen=True)
class RobotProfile:
    """Static description of an LGV model."""

    name: str = "turtlebot3"
    mass_kg: float = 1.0
    radius_m: float = 0.105  # footprint radius (Burger is ~0.21 m wide)
    max_v: float = 0.22  # hardware velocity limit (m/s)
    max_w: float = 2.84  # hardware angular limit (rad/s)
    max_accel: float = 2.5
    max_ang_accel: float = 3.2
    battery_wh: float = 19.98
    component_power: ComponentPower = TURTLEBOT3_POWER
    lidar: LidarSpec = LDS01_SPEC
    motor: MotorModel = field(
        default_factory=lambda: MotorModel(mass_kg=1.0, max_power_w=TURTLEBOT3_POWER.motor_w)
    )


#: The paper's evaluation vehicle.
TURTLEBOT3_PROFILE = RobotProfile()


class LGV:
    """A simulated low-cost ground vehicle in a world.

    Parameters
    ----------
    world:
        Ground-truth occupancy map the robot drives in.
    profile:
        Hardware description; defaults to a Turtlebot3 Burger.
    start:
        Initial pose.
    rng:
        Sensor/actuation noise source (``None`` = noiseless).
    """

    def __init__(
        self,
        world: OccupancyGrid,
        profile: RobotProfile = TURTLEBOT3_PROFILE,
        start: Pose2D = Pose2D(),
        rng: np.random.Generator | None = None,
    ) -> None:
        self.world = world
        self.profile = profile
        self.state = DiffDriveState(pose=start)
        self.battery = Battery(profile.battery_wh)
        self.energy = PowerBudget()
        self.lidar = Lidar(world, profile.lidar, rng)
        self.rng = rng
        self.cmd_v = 0.0
        self.cmd_w = 0.0
        self.velocity_cap = profile.max_v  # controller-set max velocity (Eq. 2c)
        self.odom_pose = Pose2D()  # dead-reckoned pose (odometry frame)
        self.distance_traveled = 0.0
        self.collisions = 0
        self._last_v = 0.0

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def set_command(self, v: float, w: float) -> None:
        """Set the velocity command the physics will track."""
        cap = min(self.velocity_cap, self.profile.max_v)
        self.cmd_v = max(-cap, min(cap, v))
        self.cmd_w = max(-self.profile.max_w, min(self.profile.max_w, w))

    def set_velocity_cap(self, v_max: float) -> None:
        """Controller interface: cap the maximum linear velocity."""
        self.velocity_cap = max(0.0, min(v_max, self.profile.max_v))

    # ------------------------------------------------------------------
    # Physics step
    # ------------------------------------------------------------------
    def step(self, dt: float) -> None:
        """Advance physics by ``dt``: motion, collision, energy draw.

        Energy for sensor + microcontroller (constant draw) and motor
        (Eq. 1d) is integrated here; embedded-computer and wireless
        energy are integrated by the compute/network layers.
        """
        prev = self.state
        new = step_diff_drive(
            prev,
            self.cmd_v,
            self.cmd_w,
            dt,
            max_accel=self.profile.max_accel,
            max_ang_accel=self.profile.max_ang_accel,
            v_limit=min(self.velocity_cap, self.profile.max_v),
            w_limit=self.profile.max_w,
        )
        # Collision check: footprint center must stay in free space.
        if self.world.is_free_world(new.pose.x, new.pose.y):
            moved = prev.pose.distance_to(new.pose)
            self.distance_traveled += moved
            # dead-reckoned odometry (optionally noisy)
            delta = new.pose.relative_to(prev.pose)
            if self.rng is not None and moved > 0:
                delta = Pose2D(
                    delta.x * (1.0 + self.rng.normal(0, 0.01)),
                    delta.y + self.rng.normal(0, 0.0005),
                    delta.theta * (1.0 + self.rng.normal(0, 0.01)),
                )
            self.odom_pose = self.odom_pose.compose(delta)
            self.state = new
        else:
            self.collisions += 1
            self.state = DiffDriveState(pose=prev.pose, v=0.0, w=0.0)

        # Energy integration over this interval
        accel = (self.state.v - self._last_v) / dt if dt > 0 else 0.0
        self._last_v = self.state.v
        p = self.profile.component_power
        motor_j = self.profile.motor.energy(self.state.v, accel, dt)
        sensor_j = p.sensor_w * dt
        micro_j = p.microcontroller_w * dt
        self.energy.motor_j += motor_j
        self.energy.sensor_j += sensor_j
        self.energy.microcontroller_j += micro_j
        self.battery.draw(motor_j + sensor_j + micro_j)

    # ------------------------------------------------------------------
    # Sensors
    # ------------------------------------------------------------------
    def scan(self, stamp: float = 0.0) -> LidarScan:
        """Take a lidar sweep from the current ground-truth pose."""
        return self.lidar.scan(self.state.pose, stamp)

    @property
    def pose(self) -> Pose2D:
        """Ground-truth pose (simulation bookkeeping only)."""
        return self.state.pose

    def account_compute_energy(self, joules: float) -> None:
        """Charge embedded-computer energy to the budget and battery."""
        if joules < 0:
            raise ValueError("joules must be non-negative")
        self.energy.embedded_computer_j += joules
        self.battery.draw(joules)

    def account_wireless_energy(self, joules: float) -> None:
        """Charge wireless-controller transmission energy (Eq. 1b)."""
        if joules < 0:
            raise ValueError("joules must be non-negative")
        self.energy.wireless_j += joules
        self.battery.draw(joules)
