"""2-D world substrate: occupancy grids, geometry, ray casting, lidar.

This package replaces the physical lab floor the paper drives its
Turtlebot3 across. Maps are occupancy grids (free / occupied / unknown),
the lidar is a vectorized ray caster with LDS-01-like parameters.
"""

from repro.world.geometry import (
    Pose2D,
    angle_diff,
    normalize_angle,
    rot2d,
    transform_points,
)
from repro.world.grid import CellState, OccupancyGrid
from repro.world.lidar import Lidar, LidarScan, LDS01_SPEC, LidarSpec
from repro.world.maps import (
    box_world,
    corridor_world,
    intel_lab_world,
    obstacle_course_world,
    open_world,
)
from repro.world.raycast import cast_rays

__all__ = [
    "Pose2D",
    "angle_diff",
    "normalize_angle",
    "rot2d",
    "transform_points",
    "CellState",
    "OccupancyGrid",
    "Lidar",
    "LidarScan",
    "LidarSpec",
    "LDS01_SPEC",
    "cast_rays",
    "box_world",
    "corridor_world",
    "intel_lab_world",
    "obstacle_course_world",
    "open_world",
]
