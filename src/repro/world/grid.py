"""Occupancy grids.

The grid stores one int8 per cell: FREE (0), OCCUPIED (100) or
UNKNOWN (-1), matching ROS ``nav_msgs/OccupancyGrid`` conventions so
the costmap and planners translate directly from their ROS
counterparts. World coordinates are meters with the grid's ``origin``
at the center of cell (0, 0); indices are (row=y, col=x).
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.world.geometry import Pose2D


class CellState(IntEnum):
    """Cell occupancy values (ROS OccupancyGrid convention)."""

    FREE = 0
    OCCUPIED = 100
    UNKNOWN = -1


class OccupancyGrid:
    """A 2-D occupancy grid map.

    Parameters
    ----------
    data:
        (rows, cols) int8 array of :class:`CellState` values.
    resolution:
        Cell edge length in meters.
    origin:
        World pose of cell (0, 0)'s center. Only translation is used;
        rotated maps are not supported (the paper's maps are axis-aligned).
    """

    def __init__(
        self,
        data: np.ndarray,
        resolution: float = 0.05,
        origin: Pose2D = Pose2D(),
    ) -> None:
        arr = np.asarray(data, dtype=np.int8)
        if arr.ndim != 2:
            raise ValueError(f"grid data must be 2-D, got shape {arr.shape}")
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        if abs(origin.theta) > 1e-12:
            raise ValueError("rotated grid origins are not supported")
        self.data = arr
        self.resolution = float(resolution)
        self.origin = origin

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        rows: int,
        cols: int,
        resolution: float = 0.05,
        origin: Pose2D = Pose2D(),
        fill: CellState = CellState.FREE,
    ) -> OccupancyGrid:
        """An all-``fill`` grid of the given shape."""
        return cls(np.full((rows, cols), int(fill), dtype=np.int8), resolution, origin)

    @classmethod
    def from_ascii(
        cls, art: str, resolution: float = 0.05, origin: Pose2D = Pose2D()
    ) -> OccupancyGrid:
        """Build a grid from ASCII art.

        ``#`` = occupied, ``.`` or space = free, ``?`` = unknown. The
        first text line is the *top* row of the map (highest y), as a
        human would draw it.
        """
        lines = [ln for ln in art.splitlines() if ln.strip("\n")]
        if not lines:
            raise ValueError("empty ascii map")
        width = max(len(ln) for ln in lines)
        rows = len(lines)
        data = np.full((rows, width), int(CellState.FREE), dtype=np.int8)
        for r, line in enumerate(lines):
            for c, ch in enumerate(line):
                if ch == "#":
                    data[rows - 1 - r, c] = int(CellState.OCCUPIED)
                elif ch == "?":
                    data[rows - 1 - r, c] = int(CellState.UNKNOWN)
        return cls(data, resolution, origin)

    def copy(self) -> OccupancyGrid:
        """Deep copy (data array is copied)."""
        return OccupancyGrid(self.data.copy(), self.resolution, self.origin)

    # ------------------------------------------------------------------
    # Shape & coordinate transforms
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of rows (y extent in cells)."""
        return self.data.shape[0]

    @property
    def cols(self) -> int:
        """Number of columns (x extent in cells)."""
        return self.data.shape[1]

    @property
    def width_m(self) -> float:
        """Map width (x) in meters."""
        return self.cols * self.resolution

    @property
    def height_m(self) -> float:
        """Map height (y) in meters."""
        return self.rows * self.resolution

    def world_to_cell(self, x: float, y: float) -> tuple[int, int]:
        """World (x, y) in meters -> (row, col). No bounds check."""
        col = int(np.floor((x - self.origin.x) / self.resolution + 0.5))
        row = int(np.floor((y - self.origin.y) / self.resolution + 0.5))
        return row, col

    def cell_to_world(self, row: int, col: int) -> tuple[float, float]:
        """Cell (row, col) -> world coordinates of the cell center."""
        return (
            self.origin.x + col * self.resolution,
            self.origin.y + row * self.resolution,
        )

    def world_to_cells(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`world_to_cell` for an (N, 2) array -> (N, 2) [row, col]."""
        pts = np.asarray(xy, dtype=np.float64)
        cols = np.floor((pts[:, 0] - self.origin.x) / self.resolution + 0.5).astype(np.int64)
        rows = np.floor((pts[:, 1] - self.origin.y) / self.resolution + 0.5).astype(np.int64)
        return np.stack([rows, cols], axis=1)

    def in_bounds(self, row: int, col: int) -> bool:
        """Whether (row, col) indexes a real cell."""
        return 0 <= row < self.rows and 0 <= col < self.cols

    def in_bounds_mask(self, cells: np.ndarray) -> np.ndarray:
        """Vectorized bounds check for an (N, 2) [row, col] array."""
        c = np.asarray(cells)
        return (
            (c[:, 0] >= 0) & (c[:, 0] < self.rows) & (c[:, 1] >= 0) & (c[:, 1] < self.cols)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state_at_world(self, x: float, y: float) -> CellState:
        """Occupancy state at a world point; out of bounds -> OCCUPIED.

        Treating the map border as occupied keeps planners and the
        ray caster from escaping the world.
        """
        row, col = self.world_to_cell(x, y)
        if not self.in_bounds(row, col):
            return CellState.OCCUPIED
        return CellState(int(self.data[row, col]))

    def is_free_world(self, x: float, y: float) -> bool:
        """True when the world point lies in a FREE cell."""
        return self.state_at_world(x, y) == CellState.FREE

    def occupied_mask(self) -> np.ndarray:
        """Boolean (rows, cols) mask of occupied cells."""
        return self.data == int(CellState.OCCUPIED)

    def unknown_mask(self) -> np.ndarray:
        """Boolean mask of unknown cells."""
        return self.data == int(CellState.UNKNOWN)

    def free_mask(self) -> np.ndarray:
        """Boolean mask of free cells."""
        return self.data == int(CellState.FREE)

    def known_fraction(self) -> float:
        """Fraction of cells that are not UNKNOWN (exploration progress)."""
        return float(np.mean(self.data != int(CellState.UNKNOWN)))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_state_world(self, x: float, y: float, state: CellState) -> None:
        """Set the cell containing the world point; out of bounds ignored."""
        row, col = self.world_to_cell(x, y)
        if self.in_bounds(row, col):
            self.data[row, col] = int(state)

    def fill_rect_world(
        self, x0: float, y0: float, x1: float, y1: float, state: CellState
    ) -> None:
        """Set every cell whose center lies in the world rectangle."""
        r0, c0 = self.world_to_cell(min(x0, x1), min(y0, y1))
        r1, c1 = self.world_to_cell(max(x0, x1), max(y0, y1))
        r0, c0 = max(r0, 0), max(c0, 0)
        r1, c1 = min(r1, self.rows - 1), min(c1, self.cols - 1)
        if r1 >= r0 and c1 >= c0:
            self.data[r0 : r1 + 1, c0 : c1 + 1] = int(state)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OccupancyGrid({self.rows}x{self.cols} @ {self.resolution}m, "
            f"origin=({self.origin.x:.2f},{self.origin.y:.2f}))"
        )
