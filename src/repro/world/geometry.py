"""Planar geometry: poses, angles, rigid transforms.

All angles are radians in (-pi, pi]; all distances are meters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Wrap ``theta`` into (-pi, pi]."""
    wrapped = math.fmod(theta + math.pi, TWO_PI)
    if wrapped <= 0.0:
        wrapped += TWO_PI
    return wrapped - math.pi


def angle_diff(a: float, b: float) -> float:
    """Smallest signed angle taking ``b`` to ``a`` (i.e. a - b wrapped)."""
    return normalize_angle(a - b)


def normalize_angles(theta: np.ndarray) -> np.ndarray:
    """Vectorized :func:`normalize_angle` for numpy arrays."""
    return np.mod(np.asarray(theta) + np.pi, TWO_PI) - np.pi


@dataclass(frozen=True)
class Pose2D:
    """A planar pose: position (x, y) in meters and heading theta.

    Immutable; arithmetic helpers return new poses.
    """

    x: float = 0.0
    y: float = 0.0
    theta: float = 0.0

    def position(self) -> np.ndarray:
        """The (x, y) position as a float64 array."""
        return np.array([self.x, self.y], dtype=np.float64)

    def compose(self, other: Pose2D) -> Pose2D:
        """Rigid-body composition ``self ∘ other``.

        ``other`` is interpreted in this pose's frame; the result is in
        the parent frame. This is the standard SE(2) group operation.
        """
        c, s = math.cos(self.theta), math.sin(self.theta)
        return Pose2D(
            x=self.x + c * other.x - s * other.y,
            y=self.y + s * other.x + c * other.y,
            theta=normalize_angle(self.theta + other.theta),
        )

    def inverse(self) -> Pose2D:
        """The SE(2) inverse such that ``p.compose(p.inverse())`` is identity."""
        c, s = math.cos(self.theta), math.sin(self.theta)
        return Pose2D(
            x=-(c * self.x + s * self.y),
            y=-(-s * self.x + c * self.y),
            theta=normalize_angle(-self.theta),
        )

    def relative_to(self, frame: Pose2D) -> Pose2D:
        """Express this pose in the coordinate frame of ``frame``."""
        return frame.inverse().compose(self)

    def distance_to(self, other: Pose2D) -> float:
        """Euclidean distance between the two positions."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def heading_to(self, other: Pose2D) -> float:
        """Bearing (world frame) from this pose's position to ``other``'s."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def as_array(self) -> np.ndarray:
        """The pose as ``[x, y, theta]``."""
        return np.array([self.x, self.y, self.theta], dtype=np.float64)

    @staticmethod
    def from_array(arr: np.ndarray) -> Pose2D:
        """Build a pose from ``[x, y, theta]``."""
        return Pose2D(float(arr[0]), float(arr[1]), normalize_angle(float(arr[2])))


def rot2d(theta: float) -> np.ndarray:
    """2x2 rotation matrix for ``theta``."""
    c, s = math.cos(theta), math.sin(theta)
    return np.array([[c, -s], [s, c]], dtype=np.float64)


def transform_points(points: np.ndarray, pose: Pose2D) -> np.ndarray:
    """Transform an (N, 2) array of points from ``pose``'s frame to world.

    Vectorized: one matmul plus a broadcast add.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (N, 2) points, got {pts.shape}")
    return pts @ rot2d(pose.theta).T + np.array([pose.x, pose.y])
