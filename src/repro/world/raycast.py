"""Vectorized ray casting against occupancy grids.

Per the HPC guides, the hot loop is expressed as numpy array
operations: all rays are marched simultaneously in fixed world-space
steps of half a cell, and each iteration does a single fancy-indexed
lookup into the grid. Rays that have already hit are masked out so no
Python-level per-ray loop exists.
"""

from __future__ import annotations

import numpy as np

from repro.world.grid import CellState, OccupancyGrid


def cast_rays(
    grid: OccupancyGrid,
    x: float,
    y: float,
    angles: np.ndarray,
    max_range: float,
    hit_unknown: bool = False,
) -> np.ndarray:
    """Cast rays from (x, y) at world ``angles`` and return hit ranges.

    Parameters
    ----------
    grid:
        The map to cast against.
    x, y:
        Ray origin in world meters.
    angles:
        (N,) array of world-frame ray directions in radians.
    max_range:
        Rays that hit nothing within this distance return ``max_range``.
    hit_unknown:
        When True, UNKNOWN cells stop rays too (used by SLAM map
        building); when False rays pass through unknown space (used by
        the ground-truth sensor where the true map has no unknowns).

    Returns
    -------
    (N,) float64 array of ranges in meters, clipped to ``max_range``.
    """
    angles = np.atleast_1d(np.asarray(angles, dtype=np.float64))
    n = angles.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if max_range <= 0:
        raise ValueError(f"max_range must be positive, got {max_range}")

    step = 0.5 * grid.resolution
    n_steps = int(np.ceil(max_range / step)) + 1

    dx = np.cos(angles) * step
    dy = np.sin(angles) * step

    px = np.full(n, x, dtype=np.float64)
    py = np.full(n, y, dtype=np.float64)
    ranges = np.full(n, max_range, dtype=np.float64)
    alive = np.ones(n, dtype=bool)

    occupied = int(CellState.OCCUPIED)
    unknown = int(CellState.UNKNOWN)
    res = grid.resolution
    ox, oy = grid.origin.x, grid.origin.y
    rows, cols = grid.rows, grid.cols
    data = grid.data

    for i in range(1, n_steps + 1):
        if not alive.any():
            break
        px[alive] += dx[alive]
        py[alive] += dy[alive]

        idx = np.nonzero(alive)[0]
        r = np.floor((py[idx] - oy) / res + 0.5).astype(np.int64)
        c = np.floor((px[idx] - ox) / res + 0.5).astype(np.int64)

        oob = (r < 0) | (r >= rows) | (c < 0) | (c >= cols)
        vals = np.empty(idx.shape[0], dtype=np.int8)
        vals[oob] = occupied  # world border is solid
        inb = ~oob
        vals[inb] = data[r[inb], c[inb]]

        hit = vals == occupied
        if hit_unknown:
            hit |= vals == unknown

        if hit.any():
            hit_idx = idx[hit]
            ranges[hit_idx] = np.minimum(i * step, max_range)
            alive[hit_idx] = False

    return ranges


def bresenham_cells(r0: int, c0: int, r1: int, c1: int) -> np.ndarray:
    """All grid cells on the segment (r0,c0)->(r1,c1), endpoints included.

    Classic integer Bresenham; used by SLAM to mark free space along a
    beam. Returns an (K, 2) int64 array of [row, col].
    """
    cells = []
    dr = abs(r1 - r0)
    dc = abs(c1 - c0)
    sr = 1 if r1 >= r0 else -1
    sc = 1 if c1 >= c0 else -1
    err = dc - dr
    r, c = r0, c0
    while True:
        cells.append((r, c))
        if r == r1 and c == c1:
            break
        e2 = 2 * err
        if e2 > -dr:
            err -= dr
            c += sc
        if e2 < dc:
            err += dc
            r += sr
    return np.asarray(cells, dtype=np.int64)
