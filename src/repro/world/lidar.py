"""Laser distance sensor model (Turtlebot3's LDS-01).

The sensor sweeps 360 beams over a full circle, casts each beam against
the ground-truth map, and adds Gaussian range noise. Scan size in bytes
follows the paper's observation that a laser scan is the largest
message (~2.94 KB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.geometry import Pose2D
from repro.world.grid import OccupancyGrid
from repro.world.raycast import cast_rays


@dataclass(frozen=True)
class LidarSpec:
    """Static parameters of a scanning lidar."""

    n_beams: int = 360
    angle_min: float = -np.pi
    angle_max: float = np.pi
    range_min: float = 0.12
    range_max: float = 3.5
    noise_std: float = 0.01
    scan_rate_hz: float = 5.0

    def angles(self) -> np.ndarray:
        """Beam angles in the sensor frame, endpoint excluded."""
        return np.linspace(self.angle_min, self.angle_max, self.n_beams, endpoint=False)


#: The LDS-01 laser on a Turtlebot3: 360 beams, 3.5 m range, 5 Hz.
LDS01_SPEC = LidarSpec()


@dataclass
class LidarScan:
    """One lidar sweep.

    ``ranges[i]`` is the measured distance along ``angles[i]`` (sensor
    frame). Beams that saw nothing are clipped at ``range_max``.
    """

    ranges: np.ndarray
    angles: np.ndarray
    range_min: float
    range_max: float
    pose: Pose2D  # ground-truth sensor pose at scan time (sim bookkeeping)
    stamp: float = 0.0

    def valid_mask(self) -> np.ndarray:
        """Beams with a real return (inside [range_min, range_max))."""
        return (self.ranges >= self.range_min) & (self.ranges < self.range_max - 1e-9)

    def points(self) -> np.ndarray:
        """Valid returns as (N, 2) points in the *sensor* frame."""
        m = self.valid_mask()
        r = self.ranges[m]
        a = self.angles[m]
        return np.stack([r * np.cos(a), r * np.sin(a)], axis=1)

    def size_bytes(self) -> int:
        """Serialized size: header + one float32 per beam (~2.9 KB for 360)."""
        return 56 + 8 * len(self.ranges)


class Lidar:
    """A lidar attached to a ground-truth map.

    Parameters
    ----------
    grid:
        Ground-truth occupancy map the beams are cast against.
    spec:
        Sensor parameters; defaults to the LDS-01.
    rng:
        Noise source; ``None`` disables range noise entirely.
    """

    def __init__(
        self,
        grid: OccupancyGrid,
        spec: LidarSpec = LDS01_SPEC,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.grid = grid
        self.spec = spec
        self.rng = rng
        self._angles = spec.angles()

    def scan(self, pose: Pose2D, stamp: float = 0.0) -> LidarScan:
        """Take one sweep from ``pose``; returns a noisy :class:`LidarScan`."""
        world_angles = self._angles + pose.theta
        ranges = cast_rays(self.grid, pose.x, pose.y, world_angles, self.spec.range_max)
        if self.rng is not None and self.spec.noise_std > 0:
            hit = ranges < self.spec.range_max - 1e-9
            noise = self.rng.normal(0.0, self.spec.noise_std, size=ranges.shape)
            ranges = np.where(hit, ranges + noise, ranges)
            np.clip(ranges, self.spec.range_min, self.spec.range_max, out=ranges)
        return LidarScan(
            ranges=ranges,
            angles=self._angles,
            range_min=self.spec.range_min,
            range_max=self.spec.range_max,
            pose=pose,
            stamp=stamp,
        )
