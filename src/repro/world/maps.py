"""Built-in world maps.

These replace the paper's physical lab and the Intel Research Lab
dataset map. All are ground-truth maps (no UNKNOWN cells) used by the
lidar model; SLAM builds its own map from scratch.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import seeded_rng
from repro.world.geometry import Pose2D
from repro.world.grid import CellState, OccupancyGrid


def open_world(size_m: float = 10.0, resolution: float = 0.05) -> OccupancyGrid:
    """A bounded empty square arena with solid walls."""
    cells = int(round(size_m / resolution))
    grid = OccupancyGrid.empty(cells, cells, resolution)
    _add_walls(grid)
    return grid


def box_world(size_m: float = 10.0, resolution: float = 0.05) -> OccupancyGrid:
    """Arena with a square box obstacle in the middle."""
    grid = open_world(size_m, resolution)
    lo, hi = 0.4 * size_m, 0.6 * size_m
    grid.fill_rect_world(lo, lo, hi, hi, CellState.OCCUPIED)
    return grid


def corridor_world(
    length_m: float = 12.0, width_m: float = 2.0, resolution: float = 0.05
) -> OccupancyGrid:
    """A straight corridor; good for 'heading straight' velocity phases."""
    rows = int(round(width_m / resolution))
    cols = int(round(length_m / resolution))
    grid = OccupancyGrid.empty(rows, cols, resolution)
    _add_walls(grid)
    return grid


def obstacle_course_world(
    size_m: float = 12.0,
    n_obstacles: int = 14,
    obstacle_m: float = 0.6,
    seed: int = 7,
    resolution: float = 0.05,
) -> OccupancyGrid:
    """Arena scattered with square obstacles (Fig. 14's 'complex world').

    Obstacles avoid a margin near the border so start/goal corners stay
    reachable.
    """
    grid = open_world(size_m, resolution)
    rng = seeded_rng(seed)
    margin = 1.5
    for _ in range(n_obstacles):
        cx = float(rng.uniform(margin, size_m - margin))
        cy = float(rng.uniform(margin, size_m - margin))
        half = obstacle_m / 2.0
        grid.fill_rect_world(cx - half, cy - half, cx + half, cy + half, CellState.OCCUPIED)
    return grid


def intel_lab_world(resolution: float = 0.05) -> OccupancyGrid:
    """A synthetic stand-in for the Intel Research Lab map.

    The real dataset is a ring of offices around a central core. We
    reproduce that topology: outer walls, a central block, and office
    partitions with door gaps, giving SLAM the loopy, clutter-heavy
    scan workload the paper profiles.
    """
    art = """
############################################
#..........................................#
#..####..####...####..####...####..####....#
#..#..........................................
#..#..####..####...####..####...####..###..#
#...........................................#
#....########################........####..#
#....#......................#...............#
#....#......................#...######......#
#....#......................#...#....#......#
#....#......................#...#....#......#
#....########.....##########....######......#
#............................................
#..####...####..####...####..####...####....#
#............................................
#..####...####..####...####..####...####....#
#............................................
############################################
"""
    # Scale the ascii art up 4x so rooms are multiple robot-widths wide.
    base = OccupancyGrid.from_ascii(art, resolution=resolution)
    scale = 8
    data = np.repeat(np.repeat(base.data, scale, axis=0), scale, axis=1)
    return OccupancyGrid(data, resolution, Pose2D())


def _add_walls(grid: OccupancyGrid) -> None:
    grid.data[0, :] = int(CellState.OCCUPIED)
    grid.data[-1, :] = int(CellState.OCCUPIED)
    grid.data[:, 0] = int(CellState.OCCUPIED)
    grid.data[:, -1] = int(CellState.OCCUPIED)
