"""The wireless link: per-packet latency, loss, and transmit energy.

One :class:`WirelessLink` instance models the LGV's radio association
with the WAP. It asks a position provider where the robot currently
is, derives RSSI → quality → rate, and prices each packet. The wired
hop beyond the WAP adds a fixed latency (small for the lab gateway,
larger for the remote datacenter).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.network.signal import WapSite, link_quality, phy_rate
from repro.sim.rng import seeded_rng

PositionProvider = Callable[[], tuple[float, float]]


@dataclass
class LinkState:
    """Instantaneous link condition at one packet send."""

    rssi_dbm: float
    quality: float
    rate_bps: float
    distance_m: float


@dataclass
class WirelessLink:
    """The LGV <-> WAP radio link.

    Parameters
    ----------
    wap:
        The access point site and propagation model.
    position:
        Callable returning the robot's current (x, y).
    rng:
        Source for fading/jitter/drop randomness.
    base_latency_s:
        Fixed per-packet medium-access latency.
    jitter_s:
        Exponential-tail jitter scale added per packet.
    tx_power_w:
        Radio transmit power ``P_trans`` of Eq. 1b; with the airtime
        ``D_trans / R_uplink`` it prices transmission energy.
    """

    wap: WapSite
    position: PositionProvider
    rng: np.random.Generator = field(default_factory=lambda: seeded_rng(0))
    base_latency_s: float = 0.002
    jitter_s: float = 0.001
    tx_power_w: float = 1.2
    #: Fault-injection state, driven by :mod:`repro.faults`. When
    #: ``fault_blocked`` the radio is dead — zero quality and rate,
    #: control plane included (a WAP death). ``fault_rssi_offset_db``
    #: is an additive RSSI penalty modelling interference/degradation
    #: windows; 0 means no fault. Both default to the no-fault state so
    #: unfaulted runs are bit-identical.
    fault_blocked: bool = False
    fault_rssi_offset_db: float = 0.0

    def state(self) -> LinkState:
        """Sample the current link condition at the robot's position."""
        x, y = self.position()
        rssi = self.wap.rssi_at(x, y, self.rng if self.wap.model.shadow_sigma_db > 0 else None)
        if self.fault_rssi_offset_db:
            rssi += self.fault_rssi_offset_db
        if self.fault_blocked:
            return LinkState(
                rssi_dbm=-120.0,
                quality=0.0,
                rate_bps=0.0,
                distance_m=self.wap.distance_to(x, y),
            )
        return LinkState(
            rssi_dbm=rssi,
            quality=link_quality(rssi),
            rate_bps=phy_rate(rssi),
            distance_m=self.wap.distance_to(x, y),
        )

    def airtime(self, n_bytes: int, state: LinkState | None = None) -> float:
        """Seconds of radio airtime to push ``n_bytes`` at the current rate.

        Infinite when the link is out of range (rate 0).
        """
        st = state or self.state()
        if st.rate_bps <= 0:
            return float("inf")
        return 8.0 * n_bytes / st.rate_bps

    def tx_energy(self, n_bytes: int, state: LinkState | None = None) -> float:
        """Transmit energy (J) for ``n_bytes``: Eq. 1b's P_trans * D / R.

        Out-of-range sends burn one full retry window of radio time.
        """
        t = self.airtime(n_bytes, state)
        if math.isinf(t):
            t = 0.01
        return self.tx_power_w * t

    def delivery_roll(self, state: LinkState) -> bool:
        """Bernoulli draw: does a packet survive the air at this quality?"""
        return bool(self.rng.random() < state.quality)

    def packet_latency(self, n_bytes: int, state: LinkState) -> float:
        """One-way air latency for a delivered packet."""
        jitter = float(self.rng.exponential(self.jitter_s))
        return self.base_latency_s + self.airtime(n_bytes, state) + jitter
