"""Wireless network substrate.

Models the 5 GHz link between the LGV and the wireless access point
(WAP), plus the wired hop to the cloud. The UDP channel reproduces the
paper's Fig. 7 pathology: under weak signal the driver blocks the
kernel buffer, later packets are silently discarded, and the latency
of the packets that *do* arrive keeps looking healthy — which is why
Algorithm 2 predicts quality from packet bandwidth and signal
direction instead.
"""

from repro.network.signal import PathLossModel, WapSite, link_quality
from repro.network.link import WirelessLink
from repro.network.udp import UdpChannel, UdpStats
from repro.network.tcp import ReliableChannel
from repro.network.fabric import FleetRadioNetwork, NetworkFabric
from repro.network.monitor import BandwidthMonitor, RttMonitor, SignalDirectionEstimator

__all__ = [
    "PathLossModel",
    "WapSite",
    "link_quality",
    "WirelessLink",
    "UdpChannel",
    "UdpStats",
    "ReliableChannel",
    "NetworkFabric",
    "FleetRadioNetwork",
    "BandwidthMonitor",
    "RttMonitor",
    "SignalDirectionEstimator",
]
