"""The network fabric: routes graph traffic across the topology.

Implements the middleware :class:`~repro.middleware.graph.Transport`
protocol for the paper's topology: LGV --wireless--> WAP --wired-->
{edge gateway | cloud}. Uplink packets (robot -> server) are priced
for transmission energy per Eq. 1b and charged to the LGV; receive
energy is ignored, as the paper does.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Sequence

from repro.sim.rng import seeded_rng

from repro.compute.host import Host
from repro.network.link import WirelessLink
from repro.network.signal import WapSite
from repro.network.tcp import ReliableChannel
from repro.network.udp import UdpChannel


class NetworkFabric:
    """Transport over one wireless hop plus per-server wired hops.

    Parameters
    ----------
    link:
        The LGV <-> WAP radio.
    wired_latency:
        Host name -> one-way wired latency (s) between the WAP and that
        server. The edge gateway sits on the LAN (~0.5 ms); the cloud
        datacenter is tens of ms away.
    energy_sink:
        Called with joules for every uplink transmission (wired to
        :meth:`repro.vehicle.robot.LGV.account_wireless_energy`).
    """

    def __init__(
        self,
        link: WirelessLink,
        wired_latency: dict[str, float] | None = None,
        energy_sink: Callable[[float], None] | None = None,
    ) -> None:
        self.link = link
        self.wired_latency = dict(wired_latency or {})
        self.energy_sink = energy_sink
        self.uplink = UdpChannel(link)
        self.downlink = UdpChannel(link)
        self.control = ReliableChannel(link)
        self.heartbeats_sent = 0
        self.heartbeats_observed = 0

    # ------------------------------------------------------------------
    # Transport protocol
    # ------------------------------------------------------------------
    def send(self, src: Host, dst: Host, n_bytes: int, now: float) -> float | None:
        """Datagram latency from ``src`` to ``dst``, or ``None`` if lost."""
        if src is dst:
            return 0.0
        if src.on_robot and dst.on_robot:
            return 0.0
        if not src.up or not dst.up:
            # A crashed endpoint neither sends nor receives datagrams.
            return None
        if not src.on_robot and not dst.on_robot:
            return self._wired(src.name) + self._wired(dst.name)
        if src.on_robot:
            # Uplink: pay radio energy for anything the driver transmits.
            st = self.link.state()
            latency = self.uplink.send(n_bytes, now)
            if self.energy_sink is not None and self.uplink.transmitting(st):
                self.energy_sink(self.link.tx_energy(n_bytes, st))
            if latency is None:
                return None
            return latency + self._wired(dst.name)
        # Downlink: WAP transmits; robot pays nothing.
        latency = self.downlink.send(n_bytes, now)
        if latency is None:
            return None
        return latency + self._wired(src.name)

    def rtt(self, a: Host, b: Host, n_bytes: int, now: float) -> float:
        """Reliable round-trip estimate (control-plane, small payloads)."""
        one_way = self.reliable_send(a, b, n_bytes, now)
        back = self.reliable_send(b, a, 64, now)
        return one_way + back

    def reliable_send(self, src: Host, dst: Host, n_bytes: int, now: float) -> float:
        """Latency for a retransmitted-until-delivered transfer."""
        if src is dst or (src.on_robot and dst.on_robot):
            return 0.0
        if not src.up or not dst.up:
            # Reliable transfer to/from a dead host: the sender burns
            # its full retransmission budget before giving up.
            return self.control.rto_s * 64
        if not src.on_robot and not dst.on_robot:
            return self._wired(src.name) + self._wired(dst.name)
        air = self.control.send(n_bytes, now)  # wireless hop
        if src.on_robot and self.energy_sink is not None:
            self.energy_sink(self.link.tx_energy(n_bytes))
        other = dst if src.on_robot else src
        return air + self._wired(other.name)

    def heartbeat(self, src: Host, dst: Host, n_bytes: int, now: float) -> float | None:
        """Supervision datagram from ``src`` to ``dst``.

        Rides the same best-effort channels as data traffic, so every
        condition that silences the data plane — a crashed endpoint, a
        blocked driver, loss in the air — silences heartbeats too.
        ``None`` means the beat was not observed; the supervision layer
        (:mod:`repro.recovery`) treats only this, never fault-injector
        state, as its failure signal.
        """
        self.heartbeats_sent += 1
        latency = self.send(src, dst, n_bytes, now)
        if latency is not None:
            self.heartbeats_observed += 1
        return latency

    def flush_held(self, now: float) -> int:
        """Drain kernel-held packets after a link recovery; returns count.

        Fault-clearing events call this so packets stuck during an
        outage window go out when the radio comes back, rather than
        waiting for the next application send (satellite fix to the
        Fig. 7 model).
        """
        return self.uplink.flush(now) + self.downlink.flush(now)

    def _wired(self, host_name: str) -> float:
        return self.wired_latency.get(host_name, 0.0)


class FleetRadioNetwork:
    """Radio access for a whole fleet: many robots, many WAPs.

    Where :class:`NetworkFabric` models *one* robot's association in
    full middleware detail, this models the fleet-scale experiment's
    access layer: each attached robot gets its own
    :class:`WirelessLink` to its nearest WAP (its own fading/jitter
    randomness, so fleet runs stay a pure function of the seed) and an
    uplink/downlink :class:`~repro.network.udp.UdpChannel` pair, with
    one shared wired hop from the WAP fabric to the serving pool.

    Parameters
    ----------
    waps:
        Access-point sites covering the operating area.
    wired_latency_s:
        One-way WAP -> pool latency (LAN for an edge pool, tens of ms
        for a datacenter).
    seed:
        Base seed; each robot derives an independent stream from it
        and its (stable) name hash.
    """

    def __init__(
        self,
        waps: Sequence[WapSite],
        wired_latency_s: float = 0.02,
        seed: int = 0,
    ) -> None:
        if not waps:
            raise ValueError("need at least one WAP")
        self.waps = tuple(waps)
        self.wired_latency_s = wired_latency_s
        self.seed = seed
        self._links: dict[str, WirelessLink] = {}
        self._uplinks: dict[str, UdpChannel] = {}
        self._downlinks: dict[str, UdpChannel] = {}

    def attach(
        self,
        tenant: str,
        xy: tuple[float, float],
        seed: int | None = None,
    ) -> WirelessLink:
        """Associate ``tenant`` (parked at ``xy``) with its nearest WAP."""
        if tenant in self._links:
            raise ValueError(f"tenant {tenant!r} already attached")
        wap = min(self.waps, key=lambda w: w.distance_to(*xy))
        if seed is None:
            seed = (self.seed * 2654435761 + zlib.crc32(tenant.encode())) % 2**31
        link = WirelessLink(
            wap, lambda: xy, seeded_rng(seed)
        )
        self._links[tenant] = link
        self._uplinks[tenant] = UdpChannel(link)
        self._downlinks[tenant] = UdpChannel(link)
        return link

    def link(self, tenant: str) -> WirelessLink:
        """The tenant's radio (fault-injection / inspection handle)."""
        return self._links[tenant]

    def tenants(self) -> tuple[str, ...]:
        """Attached tenant names, in attach order."""
        return tuple(self._links)

    def uplink_latency(
        self, tenant: str, n_bytes: int, now: float
    ) -> float | None:
        """Robot -> pool datagram latency, ``None`` when lost."""
        air = self._uplinks[tenant].send(n_bytes, now)
        if air is None:
            return None
        return air + self.wired_latency_s

    def downlink_latency(
        self, tenant: str, n_bytes: int, now: float
    ) -> float | None:
        """Pool -> robot datagram latency, ``None`` when lost."""
        air = self._downlinks[tenant].send(n_bytes, now)
        if air is None:
            return None
        return air + self.wired_latency_s

    def flush_held(self, now: float) -> int:
        """Drain every tenant's kernel-held packets (link recovery)."""
        return sum(
            self._uplinks[t].flush(now) + self._downlinks[t].flush(now)
            for t in self._links
        )
