"""The network fabric: routes graph traffic across the topology.

Implements the middleware :class:`~repro.middleware.graph.Transport`
protocol for the paper's topology: LGV --wireless--> WAP --wired-->
{edge gateway | cloud}. Uplink packets (robot -> server) are priced
for transmission energy per Eq. 1b and charged to the LGV; receive
energy is ignored, as the paper does.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro.sim.rng import seeded_rng

from repro.compute.host import Host
from repro.network.link import PositionProvider, WirelessLink
from repro.network.signal import WapSite
from repro.network.tcp import ReliableChannel
from repro.network.udp import UdpChannel

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.obs.context import TraceContext
    from repro.obs.tracing import RequestTracer


class NetworkFabric:
    """Transport over one wireless hop plus per-server wired hops.

    Parameters
    ----------
    link:
        The LGV <-> WAP radio.
    wired_latency:
        Host name -> one-way wired latency (s) between the WAP and that
        server. The edge gateway sits on the LAN (~0.5 ms); the cloud
        datacenter is tens of ms away.
    energy_sink:
        Called with joules for every uplink transmission (wired to
        :meth:`repro.vehicle.robot.LGV.account_wireless_energy`).
    """

    def __init__(
        self,
        link: WirelessLink,
        wired_latency: dict[str, float] | None = None,
        energy_sink: Callable[[float], None] | None = None,
    ) -> None:
        self.link = link
        self.wired_latency = dict(wired_latency or {})
        self.energy_sink = energy_sink
        self.uplink = UdpChannel(link)
        self.downlink = UdpChannel(link)
        self.control = ReliableChannel(link)
        self.heartbeats_sent = 0
        self.heartbeats_observed = 0

    # ------------------------------------------------------------------
    # Transport protocol
    # ------------------------------------------------------------------
    def send(
        self,
        src: Host,
        dst: Host,
        n_bytes: int,
        now: float,
        ctx: "TraceContext | None" = None,
        obs: "RequestTracer | None" = None,
    ) -> float | None:
        """Datagram latency from ``src`` to ``dst``, or ``None`` if lost.

        ``ctx``/``obs`` (request tracing, :mod:`repro.obs`) are handed
        down to the wireless channel so the packet's fate — air time or
        cause of death — lands under the caller's segment.
        """
        if src is dst:
            return 0.0
        if src.on_robot and dst.on_robot:
            return 0.0
        if not src.up or not dst.up:
            # A crashed endpoint neither sends nor receives datagrams.
            if obs is not None and ctx is not None:
                obs.instant(ctx, "udp_dropped", now, cause="endpoint_down")
            return None
        if not src.on_robot and not dst.on_robot:
            return self._wired(src.name) + self._wired(dst.name)
        if src.on_robot:
            # Uplink: pay radio energy for anything the driver transmits.
            st = self.link.state()
            latency = self.uplink.send(n_bytes, now, ctx=ctx, obs=obs)
            if self.energy_sink is not None and self.uplink.transmitting(st):
                self.energy_sink(self.link.tx_energy(n_bytes, st))
            if latency is None:
                return None
            return latency + self._wired(dst.name)
        # Downlink: WAP transmits; robot pays nothing.
        latency = self.downlink.send(n_bytes, now, ctx=ctx, obs=obs)
        if latency is None:
            return None
        return latency + self._wired(src.name)

    def rtt(self, a: Host, b: Host, n_bytes: int, now: float) -> float:
        """Reliable round-trip estimate (control-plane, small payloads)."""
        one_way = self.reliable_send(a, b, n_bytes, now)
        back = self.reliable_send(b, a, 64, now)
        return one_way + back

    def reliable_send(
        self,
        src: Host,
        dst: Host,
        n_bytes: int,
        now: float,
        ctx: "TraceContext | None" = None,
        obs: "RequestTracer | None" = None,
    ) -> float:
        """Latency for a retransmitted-until-delivered transfer."""
        if src is dst or (src.on_robot and dst.on_robot):
            return 0.0
        if not src.up or not dst.up:
            # Reliable transfer to/from a dead host: the sender burns
            # its full retransmission budget before giving up.
            if obs is not None and ctx is not None:
                obs.instant(ctx, "reliable_gave_up", now, cause="endpoint_down")
            return self.control.rto_s * 64
        if not src.on_robot and not dst.on_robot:
            return self._wired(src.name) + self._wired(dst.name)
        air = self.control.send(n_bytes, now, ctx=ctx, obs=obs)  # wireless hop
        if src.on_robot and self.energy_sink is not None:
            self.energy_sink(self.link.tx_energy(n_bytes))
        other = dst if src.on_robot else src
        return air + self._wired(other.name)

    def heartbeat(self, src: Host, dst: Host, n_bytes: int, now: float) -> float | None:
        """Supervision datagram from ``src`` to ``dst``.

        Rides the same best-effort channels as data traffic, so every
        condition that silences the data plane — a crashed endpoint, a
        blocked driver, loss in the air — silences heartbeats too.
        ``None`` means the beat was not observed; the supervision layer
        (:mod:`repro.recovery`) treats only this, never fault-injector
        state, as its failure signal.
        """
        self.heartbeats_sent += 1
        latency = self.send(src, dst, n_bytes, now)
        if latency is not None:
            self.heartbeats_observed += 1
        return latency

    def flush_held(self, now: float) -> int:
        """Drain kernel-held packets after a link recovery; returns count.

        Fault-clearing events call this so packets stuck during an
        outage window go out when the radio comes back, rather than
        waiting for the next application send (satellite fix to the
        Fig. 7 model).
        """
        return self.uplink.flush(now) + self.downlink.flush(now)

    def _wired(self, host_name: str) -> float:
        return self.wired_latency.get(host_name, 0.0)


class FleetRadioNetwork:
    """Radio access for a whole fleet: many robots, many WAPs.

    Where :class:`NetworkFabric` models *one* robot's association in
    full middleware detail, this models the fleet-scale experiment's
    access layer: each attached robot gets its own
    :class:`WirelessLink` to its nearest WAP (its own fading/jitter
    randomness, so fleet runs stay a pure function of the seed) and an
    uplink/downlink :class:`~repro.network.udp.UdpChannel` pair, with
    one shared wired hop from the WAP fabric to the serving pool.

    Parameters
    ----------
    waps:
        Access-point sites covering the operating area.
    wired_latency_s:
        One-way WAP -> pool latency (LAN for an edge pool, tens of ms
        for a datacenter).
    seed:
        Base seed; each robot derives an independent stream from it
        and its (stable) name hash.
    """

    def __init__(
        self,
        waps: Sequence[WapSite],
        wired_latency_s: float = 0.02,
        seed: int = 0,
    ) -> None:
        if not waps:
            raise ValueError("need at least one WAP")
        self.waps = tuple(waps)
        self.wired_latency_s = wired_latency_s
        self.seed = seed
        self.blocked = False
        self._links: dict[str, WirelessLink] = {}
        self._uplinks: dict[str, UdpChannel] = {}
        self._downlinks: dict[str, UdpChannel] = {}
        #: RNG streams of detached tenants, keyed by name. A re-attach
        #: resumes the parked stream instead of re-deriving it, so
        #: detach + re-attach draws the same fading sequence an
        #: uninterrupted association would have.
        self._parked_rng: dict[str, "np.random.Generator"] = {}

    def attach(
        self,
        tenant: str,
        xy: tuple[float, float] | PositionProvider,
        seed: int | None = None,
    ) -> WirelessLink:
        """Associate ``tenant`` with the WAP nearest its position.

        ``xy`` is either a fixed ``(x, y)`` (a parked tenant) or a
        zero-arg callable returning the current position — a driving
        tenant's signal quality then tracks its motion packet by
        packet instead of freezing at the attach-time location.

        A tenant previously removed with :meth:`detach` resumes its
        parked RNG stream; otherwise the stream derives from the
        fabric seed and the tenant's (stable) name hash.
        """
        if tenant in self._links:
            raise ValueError(f"tenant {tenant!r} already attached")
        if callable(xy):
            position: PositionProvider = xy
        else:
            fixed = (xy[0], xy[1])
            position = lambda: fixed  # noqa: E731
        wap = min(self.waps, key=lambda w: w.distance_to(*position()))
        rng = self._parked_rng.pop(tenant, None)
        if rng is None:
            if seed is None:
                seed = (self.seed * 2654435761 + zlib.crc32(tenant.encode())) % 2**31
            rng = seeded_rng(seed)
        link = WirelessLink(wap, position, rng)
        link.fault_blocked = self.blocked
        self._links[tenant] = link
        self._uplinks[tenant] = UdpChannel(link)
        self._downlinks[tenant] = UdpChannel(link)
        return link

    def detach(self, tenant: str) -> None:
        """Dissociate ``tenant``, parking its RNG stream for re-attach.

        Any packets the kernel was holding for the tenant are dropped
        with the association (the kernel buffer does not survive a
        dissociation). Detaching an unknown tenant raises ``KeyError``.
        """
        link = self._links.pop(tenant)
        del self._uplinks[tenant]
        del self._downlinks[tenant]
        self._parked_rng[tenant] = link.rng

    def reassociate(self, tenant: str) -> WirelessLink:
        """Re-pick the nearest WAP for a moving tenant, keeping its stream.

        Mutates the existing link in place (channels keep working) so
        the fading RNG and in-flight kernel holds are untouched.
        Returns the link; ``link.wap`` tells the caller whether the
        association actually moved.
        """
        link = self._links[tenant]
        wap = min(self.waps, key=lambda w: w.distance_to(*link.position()))
        if wap is not link.wap:
            link.wap = wap
        return link

    def set_blocked(self, blocked: bool) -> None:
        """Kill (or revive) every radio in this network — a site outage.

        Applies to currently attached tenants and to any attached
        later while the block holds.
        """
        self.blocked = blocked
        for link in self._links.values():
            link.fault_blocked = blocked

    def link(self, tenant: str) -> WirelessLink:
        """The tenant's radio (fault-injection / inspection handle)."""
        return self._links[tenant]

    def tenants(self) -> tuple[str, ...]:
        """Attached tenant names, in attach order."""
        return tuple(self._links)

    def uplink_latency(
        self,
        tenant: str,
        n_bytes: int,
        now: float,
        ctx: "TraceContext | None" = None,
        obs: "RequestTracer | None" = None,
    ) -> float | None:
        """Robot -> pool datagram latency, ``None`` when lost.

        With ``ctx``/``obs`` the hop records itself as an ``uplink``
        segment with nested ``air``/``wired`` sub-attribution; a lost
        packet leaves a zero-width ``uplink_lost`` marker instead.
        """
        return self._hop_latency(
            self._uplinks[tenant], "uplink", n_bytes, now, ctx, obs
        )

    def downlink_latency(
        self,
        tenant: str,
        n_bytes: int,
        now: float,
        ctx: "TraceContext | None" = None,
        obs: "RequestTracer | None" = None,
    ) -> float | None:
        """Pool -> robot datagram latency, ``None`` when lost."""
        return self._hop_latency(
            self._downlinks[tenant], "downlink", n_bytes, now, ctx, obs
        )

    def _hop_latency(
        self,
        channel: UdpChannel,
        name: str,
        n_bytes: int,
        now: float,
        ctx: "TraceContext | None",
        obs: "RequestTracer | None",
    ) -> float | None:
        air = channel.send(n_bytes, now)
        traced = obs is not None and ctx is not None
        if air is None:
            if traced:
                obs.instant(ctx, f"{name}_lost", now, bytes=n_bytes)
            return None
        total = air + self.wired_latency_s
        if traced:
            # One top-level segment per hop (so tick trees telescope),
            # air/wired split nested beneath it.
            seg = obs.segment(ctx, name, now, now + total, bytes=n_bytes)
            obs.segment(seg, "air", now, now + air)
            obs.segment(seg, "wired", now + air, now + total)
        return total

    def flush_held(self, now: float) -> int:
        """Drain every tenant's kernel-held packets (link recovery)."""
        return sum(
            self._uplinks[t].flush(now) + self._downlinks[t].flush(now)
            for t in self._links
        )
