"""The network fabric: routes graph traffic across the topology.

Implements the middleware :class:`~repro.middleware.graph.Transport`
protocol for the paper's topology: LGV --wireless--> WAP --wired-->
{edge gateway | cloud}. Uplink packets (robot -> server) are priced
for transmission energy per Eq. 1b and charged to the LGV; receive
energy is ignored, as the paper does.
"""

from __future__ import annotations

from typing import Callable

from repro.compute.host import Host
from repro.network.link import WirelessLink
from repro.network.tcp import ReliableChannel
from repro.network.udp import UdpChannel


class NetworkFabric:
    """Transport over one wireless hop plus per-server wired hops.

    Parameters
    ----------
    link:
        The LGV <-> WAP radio.
    wired_latency:
        Host name -> one-way wired latency (s) between the WAP and that
        server. The edge gateway sits on the LAN (~0.5 ms); the cloud
        datacenter is tens of ms away.
    energy_sink:
        Called with joules for every uplink transmission (wired to
        :meth:`repro.vehicle.robot.LGV.account_wireless_energy`).
    """

    def __init__(
        self,
        link: WirelessLink,
        wired_latency: dict[str, float] | None = None,
        energy_sink: Callable[[float], None] | None = None,
    ) -> None:
        self.link = link
        self.wired_latency = dict(wired_latency or {})
        self.energy_sink = energy_sink
        self.uplink = UdpChannel(link)
        self.downlink = UdpChannel(link)
        self.control = ReliableChannel(link)

    # ------------------------------------------------------------------
    # Transport protocol
    # ------------------------------------------------------------------
    def send(self, src: Host, dst: Host, n_bytes: int, now: float) -> float | None:
        """Datagram latency from ``src`` to ``dst``, or ``None`` if lost."""
        if src is dst:
            return 0.0
        if src.on_robot and dst.on_robot:
            return 0.0
        if not src.up or not dst.up:
            # A crashed endpoint neither sends nor receives datagrams.
            return None
        if not src.on_robot and not dst.on_robot:
            return self._wired(src.name) + self._wired(dst.name)
        if src.on_robot:
            # Uplink: pay radio energy for anything the driver transmits.
            st = self.link.state()
            latency = self.uplink.send(n_bytes, now)
            if self.energy_sink is not None and self.uplink.transmitting(st):
                self.energy_sink(self.link.tx_energy(n_bytes, st))
            if latency is None:
                return None
            return latency + self._wired(dst.name)
        # Downlink: WAP transmits; robot pays nothing.
        latency = self.downlink.send(n_bytes, now)
        if latency is None:
            return None
        return latency + self._wired(src.name)

    def rtt(self, a: Host, b: Host, n_bytes: int, now: float) -> float:
        """Reliable round-trip estimate (control-plane, small payloads)."""
        one_way = self.reliable_send(a, b, n_bytes, now)
        back = self.reliable_send(b, a, 64, now)
        return one_way + back

    def reliable_send(self, src: Host, dst: Host, n_bytes: int, now: float) -> float:
        """Latency for a retransmitted-until-delivered transfer."""
        if src is dst or (src.on_robot and dst.on_robot):
            return 0.0
        if not src.up or not dst.up:
            # Reliable transfer to/from a dead host: the sender burns
            # its full retransmission budget before giving up.
            return self.control.rto_s * 64
        if not src.on_robot and not dst.on_robot:
            return self._wired(src.name) + self._wired(dst.name)
        air = self.control.send(n_bytes, now)  # wireless hop
        if src.on_robot and self.energy_sink is not None:
            self.energy_sink(self.link.tx_energy(n_bytes))
        other = dst if src.on_robot else src
        return air + self._wired(other.name)

    def flush_held(self, now: float) -> int:
        """Drain kernel-held packets after a link recovery; returns count.

        Fault-clearing events call this so packets stuck during an
        outage window go out when the radio comes back, rather than
        waiting for the next application send (satellite fix to the
        Fig. 7 model).
        """
        return self.uplink.flush(now) + self.downlink.flush(now)

    def _wired(self, host_name: str) -> float:
        return self.wired_latency.get(host_name, 0.0)
