"""UDP channel with the paper's Fig. 7 kernel-buffer semantics.

The sending path is: user buffer --sendto--> kernel buffer --driver-->
air. When the driver detects weak signal it *blocks*, holding packets
in the kernel buffer; because the socket is non-blocking, sends that
arrive while the buffer is full are silently discarded. When the
signal recovers, the driver flushes the held packets — they arrive
late but they arrive, so receiver-side latency statistics on delivered
packets look healthy even while most traffic is being thrown away.
That asymmetry is exactly why the paper's Algorithm 2 trusts packet
bandwidth + signal direction, not latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.network.link import LinkState, WirelessLink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import TraceContext
    from repro.obs.tracing import RequestTracer


@dataclass
class UdpStats:
    """Counters for one UDP channel direction."""

    sent: int = 0
    delivered: int = 0
    dropped_air: int = 0
    dropped_buffer: int = 0
    #: Packets destroyed by an injected transport fault (repro.faults).
    dropped_fault: int = 0
    #: Packets whose payload an injected fault corrupted; a corrupt
    #: datagram fails the receiver's checksum, so it counts as lost.
    corrupted: int = 0
    #: Packets an injected fault duplicated. The copy is absorbed by
    #: the keep-last-1 QoS of every consumer, so duplication is
    #: observable in stats but functionally idempotent.
    duplicated: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    latencies: list[float] = field(default_factory=list)
    delivery_times: list[float] = field(default_factory=list)

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets that never arrived."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.delivered / self.sent


@dataclass
class ChannelFault:
    """Transport-level packet mangling, installed by :mod:`repro.faults`.

    Each healthy send draws once from ``rng`` and is dropped,
    corrupted or duplicated with the configured probabilities
    (mutually exclusive outcomes; the probabilities must sum to at
    most 1). The rng is owned by the fault so an unfaulted run never
    consumes it — determinism of the underlying link is untouched.
    """

    rng: np.random.Generator
    drop_p: float = 0.0
    corrupt_p: float = 0.0
    duplicate_p: float = 0.0

    def sample(self) -> str | None:
        """One fate draw: ``"drop"``/``"corrupt"``/``"duplicate"``/None."""
        u = float(self.rng.random())
        if u < self.drop_p:
            return "drop"
        if u < self.drop_p + self.corrupt_p:
            return "corrupt"
        if u < self.drop_p + self.corrupt_p + self.duplicate_p:
            return "duplicate"
        return None


class UdpChannel:
    """Best-effort datagram channel over a :class:`WirelessLink`.

    ``send`` returns the one-way delivery latency, or ``None`` for a
    discarded packet. The channel is direction-agnostic; uplink energy
    accounting is done by the fabric that owns it.

    Parameters
    ----------
    link:
        The radio link pricing each packet.
    kernel_buffer_packets:
        Capacity of the driver-side buffer that fills when the driver
        blocks under weak signal.
    block_quality:
        Link quality below which the driver holds packets instead of
        transmitting (the "weak signal" detection of Fig. 7).
    """

    def __init__(
        self,
        link: WirelessLink,
        kernel_buffer_packets: int = 2,
        block_quality: float = 0.55,
    ) -> None:
        self.link = link
        self.kernel_capacity = kernel_buffer_packets
        self.block_quality = block_quality
        self.stats = UdpStats()
        self._kernel_buffer: list[tuple[float, int]] = []  # (enqueue_time, bytes)
        #: Fault-injection state (repro.faults). ``fault_blocked``
        #: forces the driver's weak-signal hold path regardless of the
        #: real link quality — a data-plane outage that leaves the
        #: control plane (and its latency statistics) deceptively
        #: healthy. ``fault`` adds per-packet drop/corrupt/duplicate.
        self.fault_blocked: bool = False
        self.fault: ChannelFault | None = None

    def transmitting(self, state: LinkState) -> bool:
        """Whether the driver would put a packet on the air right now."""
        return not self.fault_blocked and state.quality >= self.block_quality

    def send(
        self,
        n_bytes: int,
        now: float,
        ctx: "TraceContext | None" = None,
        obs: "RequestTracer | None" = None,
    ) -> float | None:
        """Attempt to send ``n_bytes`` at virtual time ``now``.

        Returns the one-way latency for a delivered packet, ``None``
        for a drop (either a full kernel buffer or loss in the air).
        Held packets flush automatically on the next send that sees a
        healthy signal — or from an explicit :meth:`flush` fired by a
        link-recovery event; their (large) latencies are recorded in
        stats but, having stale payloads, they do not resurrect old
        messages — keep-last-1 consumers only ever want the newest
        datagram.

        ``ctx``/``obs`` (request tracing, :mod:`repro.obs`) attribute
        this send's fate — an ``air`` interval, or a marker naming why
        the packet died — under the caller's segment.
        """
        st = self.link.state()
        self.stats.sent += 1
        self.stats.bytes_sent += n_bytes
        traced = obs is not None and ctx is not None

        if not self.transmitting(st):
            # Driver blocks: hold in kernel buffer; discard when full.
            if len(self._kernel_buffer) >= self.kernel_capacity:
                self.stats.dropped_buffer += 1
                if traced:
                    obs.instant(ctx, "udp_dropped", now, cause="buffer_full")
                return None
            self._kernel_buffer.append((now, n_bytes))
            # The packet *may* eventually go out, but its payload will
            # be stale; treat it as undelivered for freshness purposes.
            if traced:
                obs.instant(ctx, "udp_held", now, held=len(self._kernel_buffer))
            return None

        # Healthy signal: flush anything the driver was holding first.
        self._flush_held(now, st)

        if self.fault is not None:
            fate = self.fault.sample()
            if fate == "drop":
                self.stats.dropped_fault += 1
                if traced:
                    obs.instant(ctx, "udp_dropped", now, cause="fault")
                return None
            if fate == "corrupt":
                self.stats.corrupted += 1
                if traced:
                    obs.instant(ctx, "udp_dropped", now, cause="corrupt")
                return None
            if fate == "duplicate":
                self.stats.duplicated += 1

        if not self.link.delivery_roll(st):
            self.stats.dropped_air += 1
            if traced:
                obs.instant(ctx, "udp_dropped", now, cause="air")
            return None
        latency = self.link.packet_latency(n_bytes, st)
        self._record_delivery(latency, now + latency)
        self.stats.bytes_delivered += n_bytes
        if traced:
            obs.segment(ctx, "air", now, now + latency, bytes=n_bytes)
        return latency

    def flush(self, now: float) -> int:
        """Flush held packets if the signal has recovered; returns count.

        Wired to link-recovery events (fault windows clearing, WAP
        handover) so held packets drain even when the sender has gone
        quiet — previously they only flushed on the *next* send.
        """
        if not self._kernel_buffer:
            return 0
        st = self.link.state()
        if not self.transmitting(st):
            return 0
        n = len(self._kernel_buffer)
        self._flush_held(now, st)
        return n

    def _flush_held(self, now: float, st: LinkState) -> None:
        for enq_time, nb in self._kernel_buffer:
            if self.link.delivery_roll(st):
                transit = self.link.packet_latency(nb, st)
                # The latency *sample* spans enqueue -> arrival (the
                # packet really did wait in the buffer), but the packet
                # leaves the driver *now*, so it arrives at now +
                # transit — the held interval must not be paid twice.
                held = now - enq_time
                self._record_delivery(held + transit, now + transit)
                self.stats.bytes_delivered += nb
            else:
                self.stats.dropped_air += 1
        self._kernel_buffer.clear()

    def _record_delivery(self, latency: float, arrival_time: float) -> None:
        self.stats.delivered += 1
        self.stats.latencies.append(latency)
        self.stats.delivery_times.append(arrival_time)

    @property
    def held_packets(self) -> int:
        """Packets currently stuck in the blocked kernel buffer."""
        return len(self._kernel_buffer)
