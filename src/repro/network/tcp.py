"""Reliable (TCP-like) channel.

Used for control-plane traffic — state migration, profiling reports —
where delivery matters more than freshness. Losses become
retransmission delay instead of drops; an out-of-range link degrades
to very large latencies rather than silence.
"""

from __future__ import annotations

from repro.network.link import WirelessLink


class ReliableChannel:
    """Retransmitting channel over a :class:`WirelessLink`.

    ``send`` always returns a latency; each failed delivery roll adds
    one retransmission timeout.
    """

    def __init__(
        self,
        link: WirelessLink,
        rto_s: float = 0.2,
        max_retries: int = 12,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.link = link
        self.rto_s = rto_s
        self.max_retries = max_retries
        self.retransmissions = 0

    def send(self, n_bytes: int, now: float) -> float:
        """Latency to reliably deliver ``n_bytes`` (retries included)."""
        total = 0.0
        for attempt in range(self.max_retries + 1):
            st = self.link.state()
            if st.rate_bps > 0 and self.link.delivery_roll(st):
                return total + self.link.packet_latency(n_bytes, st)
            self.retransmissions += 1
            total += self.rto_s * (2**min(attempt, 5))
        # Give up pretending it's fast: report the accumulated backoff
        # plus one nominal transmission at the floor rate.
        return total + self.rto_s
