"""Reliable (TCP-like) channel.

Used for control-plane traffic — state migration, profiling reports —
where delivery matters more than freshness. Losses become
retransmission delay instead of drops; an out-of-range link degrades
to very large latencies rather than silence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.rng import seeded_rng

from repro.network.link import WirelessLink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import TraceContext
    from repro.obs.tracing import RequestTracer


class ReliableChannel:
    """Retransmitting channel over a :class:`WirelessLink`.

    ``send`` always returns a latency; each failed delivery roll adds
    one capped-exponential retransmission timeout.

    Parameters
    ----------
    link:
        The radio the retransmissions ride on.
    rto_s:
        Base retransmission timeout (the first retry's spacing).
    max_retries:
        Retransmission budget before the channel gives up pretending
        it is fast and reports the accumulated backoff.
    backoff_factor:
        Multiplier between consecutive retry timeouts.
    max_backoff_s:
        Ceiling on a single retry's timeout; defaults to
        ``rto_s * backoff_factor**5`` (the classic 5-doublings cap).
    jitter_frac:
        Fractional jitter applied to each backoff interval: retry
        ``i`` waits ``backoff(i) * (1 + U(-jitter_frac, jitter_frac))``.
        Zero (the default) draws no randomness at all, keeping
        unjittered runs bit-identical to builds without this knob.
    jitter_seed:
        Seed for the dedicated jitter generator — jitter never touches
        the link's own randomness, so two channels with the same seed
        replay the same backoff schedule.
    """

    def __init__(
        self,
        link: WirelessLink,
        rto_s: float = 0.2,
        max_retries: int = 12,
        backoff_factor: float = 2.0,
        max_backoff_s: float | None = None,
        jitter_frac: float = 0.0,
        jitter_seed: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {backoff_factor}")
        if not 0.0 <= jitter_frac < 1.0:
            raise ValueError(f"jitter_frac must be in [0, 1), got {jitter_frac}")
        self.link = link
        self.rto_s = rto_s
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.max_backoff_s = (
            rto_s * backoff_factor**5 if max_backoff_s is None else max_backoff_s
        )
        if self.max_backoff_s < rto_s:
            raise ValueError("max_backoff_s must be >= rto_s")
        self.jitter_frac = jitter_frac
        self._jitter_rng = seeded_rng(jitter_seed)
        self.retransmissions = 0

    def backoff_s(self, attempt: int) -> float:
        """Nominal (jitter-free) timeout after failed attempt ``attempt``."""
        return min(self.rto_s * self.backoff_factor**attempt, self.max_backoff_s)

    def backoff_schedule(self, n: int | None = None) -> tuple[float, ...]:
        """The nominal backoff sequence for ``n`` timeouts.

        Defaults to one entry per attempt :meth:`send` can burn
        (``max_retries + 1`` — every failed attempt waits once).
        """
        count = self.max_retries + 1 if n is None else n
        return tuple(self.backoff_s(i) for i in range(count))

    def _jittered(self, backoff: float) -> float:
        if self.jitter_frac == 0.0:
            return backoff
        u = float(self._jitter_rng.uniform(-self.jitter_frac, self.jitter_frac))
        return backoff * (1.0 + u)

    def send(
        self,
        n_bytes: int,
        now: float,
        ctx: "TraceContext | None" = None,
        obs: "RequestTracer | None" = None,
    ) -> float:
        """Latency to reliably deliver ``n_bytes`` (retries included).

        ``ctx``/``obs`` (request tracing, :mod:`repro.obs`) record the
        whole reliable exchange — retry count included — under the
        caller's segment.
        """
        total = 0.0
        for attempt in range(self.max_retries + 1):
            st = self.link.state()
            if st.rate_bps > 0 and self.link.delivery_roll(st):
                latency = total + self.link.packet_latency(n_bytes, st)
                if obs is not None and ctx is not None:
                    obs.segment(
                        ctx, "reliable", now, now + latency,
                        retries=attempt, bytes=n_bytes,
                    )
                return latency
            self.retransmissions += 1
            total += self._jittered(self.backoff_s(attempt))
        # Give up pretending it's fast: report the accumulated backoff
        # plus one nominal transmission at the floor rate.
        total += self.rto_s
        if obs is not None and ctx is not None:
            obs.segment(
                ctx, "reliable", now, now + total,
                retries=self.max_retries + 1, gave_up=True, bytes=n_bytes,
            )
        return total
