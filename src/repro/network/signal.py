"""Radio signal model: log-distance path loss and link quality.

A single WAP serves the arena. Received signal strength falls with
log-distance; link quality maps RSSI to [0, 1] with a soft knee, and
the modulation ladder maps RSSI to an achievable PHY rate. The
"unstable area" of Fig. 11 is simply the region where RSSI drops
below the knee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional shadow fading.

    RSSI(d) = tx_power_dbm - ref_loss_db - 10 * exponent * log10(d / 1 m)

    Defaults approximate a 5 GHz indoor link through lab walls: solid
    within ~10 m of the WAP, unstable past ~14 m, dead past ~25 m —
    so normal missions stay connected and Fig. 11's dead zone sits at
    the arena's far corner.
    """

    tx_power_dbm: float = 15.0
    ref_loss_db: float = 61.0
    exponent: float = 2.6
    shadow_sigma_db: float = 0.0

    def rssi(self, distance_m: float, rng: np.random.Generator | None = None) -> float:
        """RSSI in dBm at ``distance_m`` from the WAP."""
        d = max(distance_m, 0.1)
        rssi = self.tx_power_dbm - self.ref_loss_db - 10.0 * self.exponent * math.log10(d)
        if rng is not None and self.shadow_sigma_db > 0:
            rssi += float(rng.normal(0.0, self.shadow_sigma_db))
        return rssi


def link_quality(rssi_dbm: float, knee_dbm: float = -76.0, width_db: float = 2.0) -> float:
    """Map RSSI to a delivery-quality score in [0, 1].

    A logistic knee: ~1 above ``knee + 2*width``, ~0 below
    ``knee - 2*width``. Delivery probability and rate selection both
    derive from this.
    """
    return 1.0 / (1.0 + math.exp(-(rssi_dbm - knee_dbm) / width_db))


#: 802.11-style modulation ladder: (min RSSI dBm, PHY rate bit/s).
MCS_LADDER: tuple[tuple[float, float], ...] = (
    (-60.0, 54e6),
    (-67.0, 24e6),
    (-72.0, 12e6),
    (-77.0, 6e6),
    (-82.0, 1e6),
)


def phy_rate(rssi_dbm: float) -> float:
    """Achievable PHY rate (bit/s) at ``rssi_dbm``; 0 when out of range."""
    for threshold, rate in MCS_LADDER:
        if rssi_dbm >= threshold:
            return rate
    return 0.0


@dataclass
class WapSite:
    """A wireless access point at a fixed world position."""

    x: float
    y: float
    model: PathLossModel = PathLossModel()

    def distance_to(self, x: float, y: float) -> float:
        """Euclidean distance from (x, y) to the WAP."""
        return math.hypot(x - self.x, y - self.y)

    def rssi_at(self, x: float, y: float, rng: np.random.Generator | None = None) -> float:
        """RSSI seen by a radio at (x, y)."""
        return self.model.rssi(self.distance_to(x, y), rng)
