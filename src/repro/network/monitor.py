"""Network quality monitors used by the Profiler (§VII).

Three instruments:

* :class:`BandwidthMonitor` — messages received per second over a
  sliding window; with a fixed sender rate this *is* the packet-loss
  signal Algorithm 2 keys on.
* :class:`RttMonitor` — round-trip samples with tail statistics; the
  metric prior work used and the paper shows is misleading under UDP.
* :class:`SignalDirectionEstimator` — sign of the robot's radial
  motion relative to the WAP (positive = approaching), the mobility
  feature of Algorithm 2.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np


class BandwidthMonitor:
    """Sliding-window receive-rate counter.

    ``record(t)`` marks one received message at virtual time ``t``;
    ``rate(now)`` returns messages/second over the trailing window.
    ``t0`` is the time observation started: before a full window has
    elapsed the denominator is clamped to the observable interval
    ``now - t0``, so the early-mission rate is not diluted by window
    time that never existed (which under-reported receive rate and
    biased Algorithm 2 toward a spurious GO_LOCAL at start-up).
    """

    def __init__(self, window_s: float = 1.0, t0: float = 0.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.window_s = window_s
        self.t0 = t0
        self._times: deque[float] = deque()
        self.total = 0

    def record(self, t: float) -> None:
        """Mark one arrival at time ``t`` (must be non-decreasing)."""
        if self._times and t < self._times[-1]:
            raise ValueError("arrival times must be non-decreasing")
        self._times.append(t)
        self.total += 1

    def rate(self, now: float) -> float:
        """Arrivals per second over [max(t0, now - window), now]."""
        cutoff = now - self.window_s
        while self._times and self._times[0] < cutoff:
            self._times.popleft()
        observed = min(self.window_s, now - self.t0)
        if observed <= 0.0:
            return 0.0
        return len(self._times) / observed


class RttMonitor:
    """Round-trip-time sampler with tail statistics."""

    def __init__(self, max_samples: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=max_samples)

    def record(self, rtt_s: float) -> None:
        """Add one RTT sample."""
        if rtt_s < 0:
            raise ValueError("rtt must be non-negative")
        self._samples.append(rtt_s)

    def __len__(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        """Mean RTT; NaN with no samples."""
        if not self._samples:
            return math.nan
        return float(np.mean(self._samples))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile RTT (e.g. 99, 99.99); NaN if empty."""
        if not self._samples:
            return math.nan
        return float(np.percentile(np.fromiter(self._samples, dtype=float), q))

    def worst(self) -> float:
        """Worst-case observed RTT; NaN if empty."""
        if not self._samples:
            return math.nan
        return max(self._samples)


class SignalDirectionEstimator:
    """Estimates whether the LGV is moving toward or away from the WAP.

    Uses the WAP position marked in the robot's internal map (as the
    paper describes) and the robot's own pose estimates. The direction
    is the smoothed negative derivative of distance: > 0 approaching,
    < 0 receding.
    """

    def __init__(self, wap_xy: tuple[float, float], smoothing: int = 3) -> None:
        if smoothing < 1:
            raise ValueError("smoothing must be >= 1")
        self.wap_xy = wap_xy
        self._deltas: deque[float] = deque(maxlen=smoothing)
        self._last: tuple[float, float] | None = None  # (t, distance)

    def record(self, t: float, x: float, y: float) -> None:
        """Feed one pose estimate at virtual time ``t``."""
        d = math.hypot(x - self.wap_xy[0], y - self.wap_xy[1])
        if self._last is not None:
            t0, d0 = self._last
            if t > t0:
                self._deltas.append(-(d - d0) / (t - t0))
        self._last = (t, d)

    def direction(self) -> float:
        """Smoothed radial speed toward the WAP (m/s); 0 when unknown."""
        if not self._deltas:
            return 0.0
        return float(np.mean(self._deltas))

    def approaching(self) -> bool:
        """True when the robot is closing on the WAP."""
        return self.direction() > 0.0
