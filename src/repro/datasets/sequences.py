"""Recorded (scan, odom) sequences for algorithm benchmarking.

A :class:`ScanSequence` is what a rosbag of the Intel Research Lab
dataset provides: timestamped lidar sweeps plus the odometry increment
since the previous sweep. Sequences are recorded by driving the
simulated vehicle with a wall-following-ish scripted controller, so no
SLAM/planner is needed to produce them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.sim.rng import seeded_rng
from repro.vehicle.robot import LGV, RobotProfile
from repro.world.geometry import Pose2D
from repro.world.grid import OccupancyGrid
from repro.world.lidar import LidarScan
from repro.world.maps import box_world, intel_lab_world


@dataclass
class ScanSequence:
    """A replayable sensor log.

    Attributes
    ----------
    scans:
        Lidar sweeps in time order.
    odom_deltas:
        Robot-frame odometry increment preceding each scan.
    poses:
        Ground-truth poses at each scan (for error evaluation only).
    """

    scans: list[LidarScan] = field(default_factory=list)
    odom_deltas: list[Pose2D] = field(default_factory=list)
    poses: list[Pose2D] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.scans)

    def __iter__(self):
        return iter(zip(self.scans, self.odom_deltas))


def record_sequence(
    world: OccupancyGrid,
    start: Pose2D,
    n_scans: int = 60,
    scan_period_s: float = 0.2,
    speed: float = 0.25,
    seed: int = 0,
) -> ScanSequence:
    """Drive the LGV through ``world`` and record a scan log.

    The scripted controller holds ``speed`` and steers away from the
    nearest obstacle in the front cone — enough to generate the loopy,
    clutter-rich trajectories SLAM profiling wants without a planner.
    """
    if n_scans < 1:
        raise ValueError("n_scans must be >= 1")
    rng = seeded_rng(seed)
    bot = LGV(world, profile=RobotProfile(max_v=max(speed, 0.22)), start=start, rng=rng)
    seq = ScanSequence()
    last_odom = bot.odom_pose
    physics_dt = 0.05
    steps = max(1, int(round(scan_period_s / physics_dt)))
    w_cmd = 0.0
    for i in range(n_scans):
        scan = bot.scan(stamp=i * scan_period_s)
        seq.scans.append(scan)
        seq.odom_deltas.append(bot.odom_pose.relative_to(last_odom))
        seq.poses.append(bot.pose)
        last_odom = bot.odom_pose

        # steer: turn away from close obstacles ahead, otherwise wander
        front = np.abs(scan.angles) < 0.8
        close = scan.ranges[front].min() if front.any() else scan.range_max
        if close < 0.7:
            left = scan.ranges[(scan.angles > 0) & (scan.angles < 1.4)].mean()
            right = scan.ranges[(scan.angles < 0) & (scan.angles > -1.4)].mean()
            w_cmd = 1.6 if left > right else -1.6
            v_cmd = 0.08
        else:
            w_cmd = 0.85 * w_cmd + float(rng.normal(0, 0.25))
            v_cmd = speed
        bot.set_command(v_cmd, w_cmd)
        for _ in range(steps):
            bot.step(physics_dt)
    return seq


@lru_cache(maxsize=4)
def intel_lab_sequence(n_scans: int = 60, seed: int = 3) -> ScanSequence:
    """The stand-in for the Intel Research Lab dataset (cached).

    Recorded in the synthetic office-ring map of
    :func:`repro.world.maps.intel_lab_world`.
    """
    world = intel_lab_world()
    start = Pose2D(1.2, 1.2, 0.3)
    return record_sequence(world, start, n_scans=n_scans, seed=seed)


@lru_cache(maxsize=4)
def box_sequence(n_scans: int = 40, seed: int = 1) -> ScanSequence:
    """A shorter sequence in the box arena (fast unit-test fodder)."""
    return record_sequence(box_world(8.0), Pose2D(2, 2, 0.5), n_scans=n_scans, seed=seed)
