"""Replayable scan/odometry datasets.

The paper profiles its cloud-acceleration algorithms on the Intel
Research Lab SLAM dataset. We cannot ship that data, so
:func:`record_sequence` drives the simulated LGV through the synthetic
Intel-lab-like map and records the same artifact: a timed sequence of
(scan, odometry) pairs that SLAM and the VDP stack can replay
deterministically.
"""

from repro.datasets.sequences import ScanSequence, intel_lab_sequence, record_sequence

__all__ = ["ScanSequence", "intel_lab_sequence", "record_sequence"]
