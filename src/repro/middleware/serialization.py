"""Serialization size model.

The paper's Switcher serializes ROS messages with protobuf before
shipping them over evpp. We model only what matters for energy/latency:
the wire size. ``serialized_size`` adds the framing overhead the
Switcher's temporal annotations introduce (timestamp + node id).
"""

from __future__ import annotations

from repro.middleware.messages import Message

#: Bytes the Switcher prepends: 8 B send timestamp, 8 B sequence,
#: 8 B source node hash (protobuf varints rounded up).
FRAMING_OVERHEAD_BYTES = 24


def serialized_size(msg: Message) -> int:
    """Wire size of ``msg`` in bytes, including Switcher framing."""
    return msg.size_bytes() + FRAMING_OVERHEAD_BYTES
