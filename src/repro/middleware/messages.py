"""Typed messages exchanged between nodes.

Sizes mirror the paper's measurements: velocity commands are tiny
(48 B), laser scans are the largest payload (~2.94 KB), grids scale
with their cell count. ``size_bytes`` drives both transmission energy
(Eq. 1b) and the network models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.world.geometry import Pose2D
from repro.world.lidar import LidarScan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import TraceContext


@dataclass
class Message:
    """Base class for middleware messages."""

    stamp: float = 0.0
    #: Causal trace context (repro.obs) stamped by the publisher when
    #: request tracing is enabled; ``None`` otherwise. Transport hops
    #: record themselves against it in ``Graph._fanout``.
    ctx: "TraceContext | None" = field(default=None, compare=False, repr=False)

    def size_bytes(self) -> int:
        """Serialized size in bytes (protobuf-like estimate)."""
        return 16


@dataclass
class ScanMsg(Message):
    """A lidar sweep; wraps :class:`~repro.world.lidar.LidarScan`."""

    scan: LidarScan | None = None

    def size_bytes(self) -> int:
        return self.scan.size_bytes() if self.scan is not None else 16


@dataclass
class TwistMsg(Message):
    """A velocity command: linear (m/s) and angular (rad/s) speed.

    ``priority`` and ``source`` feed the velocity multiplexer; ROS's
    geometry_msgs/Twist is 48 bytes, matching the paper.
    """

    v: float = 0.0
    w: float = 0.0
    priority: int = 0
    source: str = "path_tracking"

    def size_bytes(self) -> int:
        return 48


@dataclass
class OdomMsg(Message):
    """Wheel-odometry pose and commanded velocities."""

    pose: Pose2D = field(default_factory=Pose2D)
    v: float = 0.0
    w: float = 0.0

    def size_bytes(self) -> int:
        return 88


@dataclass
class PoseMsg(Message):
    """A localization estimate (AMCL or SLAM output) with covariance trace."""

    pose: Pose2D = field(default_factory=Pose2D)
    covariance_trace: float = 0.0

    def size_bytes(self) -> int:
        return 64


@dataclass
class GridMsg(Message):
    """An occupancy grid / costmap payload.

    Carries the raw array plus georeferencing; size is one byte per
    cell (int8) plus a header, as ROS serializes it.
    """

    data: np.ndarray | None = None
    resolution: float = 0.05
    origin: Pose2D = field(default_factory=Pose2D)

    def size_bytes(self) -> int:
        n = 0 if self.data is None else int(self.data.size)
        return 64 + n


@dataclass
class PathMsg(Message):
    """A planned path as an (N, 2) array of world waypoints."""

    waypoints: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))

    def size_bytes(self) -> int:
        return 32 + 16 * int(len(self.waypoints))


@dataclass
class GoalMsg(Message):
    """A navigation goal pose."""

    goal: Pose2D = field(default_factory=Pose2D)

    def size_bytes(self) -> int:
        return 40
