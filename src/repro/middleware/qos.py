"""Quality-of-service policies for subscriber queues.

The paper's VDP nodes use a UDP pattern with a one-length queue so
controllers always act on the freshest data; that is :class:`KeepLast`
with depth 1, the default everywhere in this reproduction.
"""

from __future__ import annotations

from collections import deque
from typing import Any


class KeepLast:
    """A bounded FIFO that discards the *oldest* entry when full.

    ``depth=1`` degenerates to "latest message wins", the data-freshness
    semantics robot control loops want.
    """

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._q: deque[Any] = deque(maxlen=depth)
        self.dropped = 0

    def push(self, item: Any) -> None:
        """Add ``item``; silently evicts the oldest when at capacity."""
        if len(self._q) == self.depth:
            self.dropped += 1
        self._q.append(item)

    def pop(self) -> Any:
        """Remove and return the oldest queued item."""
        return self._q.popleft()

    def clear(self) -> None:
        """Drop everything queued."""
        self._q.clear()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)
