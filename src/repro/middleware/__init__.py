"""ROS-like middleware on top of the discrete-event kernel.

Nodes subscribe to topics, publish typed messages, and run periodic
timers. Each node is pinned to a :class:`~repro.compute.host.Host`;
callbacks charge CPU cycles which the host turns into virtual
processing time and energy. Cross-host deliveries are routed through a
pluggable transport (the wireless network), same-host deliveries are
instantaneous — exactly the distinction the paper's offloading
decisions manipulate.
"""

from repro.middleware.messages import (
    GoalMsg,
    GridMsg,
    Message,
    OdomMsg,
    PathMsg,
    PoseMsg,
    ScanMsg,
    TwistMsg,
)
from repro.middleware.node import Node
from repro.middleware.graph import Graph, Transport, InstantTransport
from repro.middleware.qos import KeepLast
from repro.middleware.serialization import serialized_size

__all__ = [
    "Message",
    "ScanMsg",
    "TwistMsg",
    "OdomMsg",
    "PoseMsg",
    "GridMsg",
    "PathMsg",
    "GoalMsg",
    "Node",
    "Graph",
    "Transport",
    "InstantTransport",
    "KeepLast",
    "serialized_size",
]
