"""The middleware node: the unit of computation and of migration.

A node subscribes to topics, runs timers, and charges CPU cycles for
the work its callbacks do. The graph executes at most one callback per
node at a time; while a node is busy, newer messages replace pending
ones per the keep-last QoS, which is how a slow platform naturally
drops to a lower effective processing rate (the paper's standby
effect).

Nodes are the migration granularity of Algorithm 1: the whole node
moves between hosts, callbacks and all.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.compute.executor import ParallelProfile, SERIAL_PROFILE
from repro.middleware.messages import Message
from repro.middleware.qos import KeepLast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compute.host import Host
    from repro.middleware.graph import Graph


class Node:
    """Base class for functional nodes (Localization, CostmapGen, ...).

    Subclasses override :meth:`on_start` to subscribe and create
    timers, and implement callbacks that call :meth:`charge` with the
    cycles their computation consumed and :meth:`publish` with their
    outputs.

    Attributes
    ----------
    threads:
        Thread-pool width used when the host models this node's
        processing time; set >1 only for parallelized nodes (§V).
    parallel_profile:
        How this node's work responds to threads.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph: "Graph | None" = None
        self.host: "Host | None" = None
        self.threads: int = 1
        self.parallel_profile: ParallelProfile = SERIAL_PROFILE
        self._subs: dict[str, tuple[Callable[[Message], None], KeepLast]] = {}
        self._pending_order: list[str] = []
        self._busy_until: float = 0.0
        self._pub_buffer: list[tuple[str, Message]] = []
        self._charged: float = 0.0
        self._extra_delay: float = 0.0
        self._paused = False
        #: While paused: ``None`` means input is dropped (mid-migration
        #: semantics — the state is in flight and deliveries would race
        #: it); a list means input buffers and replays on resume in
        #: publish order (crash containment / two-phase migration).
        self._pause_buffer: list[tuple[str, Message]] | None = None
        #: Monotone state version, bumped by every committed snapshot.
        self.state_version: int = 0
        self.processed_count = 0

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the node is added to a graph."""

    def on_migrate(self, new_host: Host) -> int:
        """Called when the node is moved; returns state size in bytes.

        Subclasses carrying big state (particle sets, costmaps) return
        its serialized size so the Switcher can charge transfer time.
        """
        return self.state_size_bytes()

    # ------------------------------------------------------------------
    # Checkpointable state (repro.recovery)
    # ------------------------------------------------------------------
    def state_size_bytes(self) -> int:
        """Serialized size of this node's mutable state (Eq. 1c input).

        Both the migration transfer and the recovery checkpoint
        shipments price their airtime from this number.
        """
        return 256

    def snapshot(self) -> object | None:
        """Return an opaque copy of the node's mutable state.

        ``None`` (the default) means the node is stateless: restoring
        it is a no-op and a fresh replica is as good as the original.
        Subclasses with real state (particle sets, costmaps, tracked
        paths) return a deep-enough copy that later mutation of the
        live node cannot corrupt the checkpoint.
        """
        return None

    def restore(self, state: object) -> None:
        """Install a state previously returned by :meth:`snapshot`.

        Must be idempotent: restoring the same checkpoint twice leaves
        the node exactly as restoring it once (rollback retries).
        """

    # ------------------------------------------------------------------
    # Pause / resume (graph + recovery machinery)
    # ------------------------------------------------------------------
    def begin_pause(self, buffer: bool = False) -> None:
        """Freeze the node. No-op if already paused (buffer preserved).

        ``buffer=True`` keeps deliveries in arrival order for replay at
        resume; ``buffer=False`` drops them (a state transfer in flight
        would race any message processed meanwhile).
        """
        if self._paused:
            return
        self._paused = True
        self._pause_buffer = [] if buffer else None

    def end_pause(self) -> None:
        """Un-freeze; replays any buffered input in publish order.

        No-op when the node was never paused.
        """
        if not self._paused:
            return
        self._paused = False
        buffered, self._pause_buffer = self._pause_buffer, None
        if buffered:
            for topic, msg in buffered:
                self._deliver(topic, msg)
        self._try_process()

    # ------------------------------------------------------------------
    # API used by subclasses inside callbacks
    # ------------------------------------------------------------------
    def subscribe(self, topic: str, callback: Callable[[Message], None], depth: int = 1) -> None:
        """Receive messages on ``topic``; keep-last-``depth`` queueing."""
        if topic in self._subs:
            raise ValueError(f"{self.name} already subscribes to {topic!r}")
        self._subs[topic] = (callback, KeepLast(depth))
        if self.graph is not None:
            self.graph.register_subscription(self, topic)

    def publish(self, topic: str, msg: Message) -> None:
        """Publish ``msg``; delivered when the current callback's modeled
        processing completes (outputs can't leave before the work is done)."""
        self._pub_buffer.append((topic, msg))

    def charge(self, cycles: float) -> None:
        """Account ``cycles`` of CPU work for the running callback."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self._charged += cycles

    def add_delay(self, seconds: float) -> None:
        """Add non-CPU latency (e.g. a blocking service round-trip)."""
        if seconds < 0:
            raise ValueError(f"delay must be non-negative, got {seconds}")
        self._extra_delay += seconds

    def call(self, service: str, request: Any) -> Any:
        """Synchronous service call through the graph.

        The provider's cycles are charged to the provider's host and the
        caller blocks (virtually) for the processing plus any network
        round-trip, folded into this callback's completion time.
        """
        if self.graph is None:
            raise RuntimeError(f"node {self.name} is not attached to a graph")
        response, delay = self.graph.invoke_service(self, service, request)
        self._extra_delay += delay
        return response

    def now(self) -> float:
        """Current virtual time."""
        if self.graph is None:
            return 0.0
        return self.graph.sim.now()

    # ------------------------------------------------------------------
    # Execution machinery (driven by the graph)
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether a callback's modeled processing is still in flight."""
        return self.graph is not None and self.graph.sim.now() < self._busy_until

    @property
    def paused(self) -> bool:
        """True while the node is mid-migration (drops all input)."""
        return self._paused

    def _deliver(self, topic: str, msg: Message) -> None:
        if self._paused:
            if self._pause_buffer is not None and topic in self._subs:
                self._pause_buffer.append((topic, msg))
            return
        entry = self._subs.get(topic)
        if entry is None:
            return
        _, queue = entry
        queue.push(msg)
        if topic not in self._pending_order:
            self._pending_order.append(topic)
        self._try_process()

    def _try_process(self) -> None:
        if self.graph is None or self._paused or self.busy:
            return
        while self._pending_order:
            topic = self._pending_order[0]
            _, queue = self._subs[topic]
            if not queue:
                self._pending_order.pop(0)
                continue
            msg = queue.pop()
            if not queue:
                self._pending_order.pop(0)
            self._execute(topic, msg)
            return

    def _execute(self, trigger: str, msg: Message | None) -> None:
        assert self.graph is not None and self.host is not None
        self._charged = 0.0
        self._extra_delay = 0.0
        self._pub_buffer = []
        if msg is None or trigger in getattr(self, "_timer_callbacks", {}):
            self._timer_callbacks[trigger]()
        else:
            callback, _ = self._subs[trigger]
            callback(msg)
        proc = self.host.exec_time(self._charged, self.threads, self.parallel_profile)
        proc += self._extra_delay
        now = self.graph.sim.now()
        self._busy_until = now + proc
        self.host.account(self.name, self._charged, proc)
        outputs = self._pub_buffer
        self._pub_buffer = []
        self.processed_count += 1
        self.graph.notify_processed(self, trigger, self._charged, proc)

        def finish() -> None:
            for topic, out in outputs:
                assert self.graph is not None
                self.graph.publish(self, topic, out)
            self._try_process()

        if proc > 0:
            self.graph.sim.schedule_after(proc, finish, label=f"{self.name}:finish")
        else:
            finish()

    # Timers ------------------------------------------------------------
    _timer_callbacks: dict[str, Callable[[], None]]

    def create_timer(self, period: float, callback: Callable[[], None], name: str = "") -> None:
        """Run ``callback`` every ``period`` seconds of virtual time.

        Timer firings respect the node's busy state: a firing that
        lands while the node is processing is coalesced (at most one
        pending), like a ROS timer on a single-threaded executor.
        """
        if self.graph is None:
            raise RuntimeError(f"node {self.name} is not attached to a graph")
        if not hasattr(self, "_timer_callbacks"):
            self._timer_callbacks = {}
        key = name or f"__timer{len(self._timer_callbacks)}"
        self._timer_callbacks[key] = callback

        def fire() -> None:
            if self._paused:
                return
            if self.busy:
                if key not in self._pending_order:
                    self._pending_order.append(key)
                    # timers enqueue as zero-payload pending entries
                    self._subs.setdefault(key, (lambda _m: None, KeepLast(1)))
                    self._subs[key][1].push(_TIMER_TICK)
                return
            self._execute_timer(key)

        self.graph.sim.every(period, fire, label=f"{self.name}:{key}")

    def _execute_timer(self, key: str) -> None:
        self._execute(key, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = self.host.name if self.host else "unattached"
        return f"Node({self.name!r} on {where})"


class _TimerTick(Message):
    """Sentinel payload for coalesced timer firings."""


_TIMER_TICK = _TimerTick()
