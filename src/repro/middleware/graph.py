"""The node graph: topic routing, services, hosts, and migration.

The graph is the reproduction's ROS master + transport layer. It knows
which host every node runs on; a publish fans out to subscribers, and
each delivery either happens instantly (same host) or is handed to the
:class:`Transport`, which models the wireless link — latency, loss,
kernel-buffer stalls. Moving a node between hosts (the mechanism behind
Algorithm 1 and Algorithm 2) is :meth:`Graph.move_node`.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from typing import TYPE_CHECKING, Any, Protocol

from repro.compute.host import Host
from repro.middleware.messages import Message
from repro.middleware.node import Node
from repro.middleware.serialization import serialized_size
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry
    from repro.telemetry.instrument import GraphInstruments


class Transport(Protocol):
    """Moves bytes between hosts.

    ``send`` returns the one-way delivery latency in seconds, or
    ``None`` if the packet was lost/discarded. Implementations live in
    :mod:`repro.network`.
    """

    def send(self, src: Host, dst: Host, n_bytes: int, now: float) -> float | None:
        """Latency for ``n_bytes`` from ``src`` to ``dst``, or ``None`` if dropped."""
        ...

    def rtt(self, a: Host, b: Host, n_bytes: int, now: float) -> float:
        """Round-trip latency estimate for a small request/response pair."""
        ...


class InstantTransport:
    """Zero-latency, lossless transport — the default for unit tests."""

    def send(self, src: Host, dst: Host, n_bytes: int, now: float) -> float | None:
        return 0.0

    def rtt(self, a: Host, b: Host, n_bytes: int, now: float) -> float:
        return 0.0


ProcessedHook = Callable[[Node, str, float, float], None]


class Graph:
    """Wires nodes, topics, services and hosts together.

    Parameters
    ----------
    sim:
        The discrete-event simulator driving everything.
    transport:
        Cross-host byte mover; defaults to :class:`InstantTransport`.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; when attached the
        graph records per-node processing-time histograms, per-topic
        message/byte counters, transport latency/drop stats and
        migration events. ``None`` (default) costs one attribute test
        per hook site.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.sim = sim
        self.transport: Transport = transport or InstantTransport()
        self.nodes: dict[str, Node] = {}
        self._subs: dict[str, list[Node]] = defaultdict(list)
        self._services: dict[str, Node] = {}
        self._service_handlers: dict[str, Callable[[Any], tuple[Any, float]]] = {}
        self._processed_hooks: list[ProcessedHook] = []
        self._publish_hooks: list[Callable[[Node, str, Message], None]] = []
        self.migrations: list[tuple[float, str, str, str]] = []
        #: Fault-injection hook (repro.faults). When set, each state
        #: transfer calls ``migration_fault(old_host, new_host, pause,
        #: state_bytes, now)`` and adds the returned extra pause — the
        #: cost of an interrupted transfer being restarted.
        self.migration_fault: (
            Callable[[Host, Host, float, int, float], float] | None
        ) = None
        self.telemetry: "Telemetry | None" = None
        self._tel: "GraphInstruments | None" = None
        if telemetry is not None:
            self.set_telemetry(telemetry)

    def set_telemetry(self, telemetry: Telemetry) -> None:
        """Attach ``telemetry``, pre-creating the hot-path instruments."""
        from repro.telemetry.instrument import GraphInstruments

        self.telemetry = telemetry
        self._tel = GraphInstruments(telemetry)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: Node, host: Host) -> Node:
        """Attach ``node`` to the graph on ``host`` and start it."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        node.graph = self
        node.host = host
        self.nodes[node.name] = node
        node.on_start()
        # subscriptions made before attach (rare) are registered lazily
        for topic in list(node._subs):
            if node not in self._subs[topic]:
                self._subs[topic].append(node)
        return node

    def register_subscription(self, node: Node, topic: str) -> None:
        """Record that ``node`` wants ``topic`` (called from Node.subscribe)."""
        if node not in self._subs[topic]:
            self._subs[topic].append(node)

    def node_host(self, name: str) -> Host:
        """The host a node currently runs on."""
        node = self.nodes[name]
        assert node.host is not None
        return node.host

    # ------------------------------------------------------------------
    # Pub/sub
    # ------------------------------------------------------------------
    def publish(self, src: Node, topic: str, msg: Message) -> None:
        """Fan ``msg`` out to every subscriber of ``topic``.

        Same-host deliveries are immediate; cross-host deliveries ask
        the transport for a latency (or a drop).
        """
        msg.stamp = self.sim.now()
        for hook in self._publish_hooks:
            hook(src, topic, msg)
        assert src.host is not None
        self._fanout(src, src.host, topic, msg)

    def inject(self, topic: str, msg: Message, host: Host) -> None:
        """Publish from outside any node (e.g. the physical sensor).

        ``host`` is where the data originates — the LGV for sensors —
        so cross-host subscribers still pay transport.
        """
        msg.stamp = self.sim.now()
        if self._publish_hooks:
            hook_src = _ExternalSource(host)
            for hook in self._publish_hooks:
                hook(hook_src, topic, msg)
        self._fanout(None, host, topic, msg)

    def _fanout(self, src: Node | None, src_host: Host, topic: str, msg: Message) -> None:
        """Deliver to all subscribers; shared by publish and inject."""
        tel = self._tel
        n_bytes: int | None = None
        if tel is not None:
            n_bytes = serialized_size(msg)
            tel.topic_messages.inc(topic=topic)
            tel.topic_bytes.inc(n_bytes, topic=topic)
        for sub in self._subs.get(topic, ()):  # stable order = registration order
            if sub is src:
                continue
            if sub.host is src_host:
                sub._deliver(topic, msg)
            else:
                assert sub.host is not None
                if n_bytes is None:
                    n_bytes = serialized_size(msg)
                latency = self.transport.send(src_host, sub.host, n_bytes, self.sim.now())
                if tel is not None:
                    tel.sends.inc(topic=topic)
                    if latency is None:
                        tel.drops.inc(topic=topic)
                    else:
                        tel.send_latency.observe(latency, topic=topic)
                if msg.ctx is not None and self.telemetry is not None:
                    requests = self.telemetry.requests
                    if requests is not None:
                        now = self.sim.now()
                        if latency is None:
                            requests.instant(
                                msg.ctx, "transport_lost", now,
                                topic=topic, dest=sub.host.name,
                            )
                        else:
                            requests.segment(
                                msg.ctx, "transport", now, now + latency,
                                topic=topic, src=src_host.name, dest=sub.host.name,
                            )
                if latency is None:
                    continue  # dropped
                if latency <= 0:
                    sub._deliver(topic, msg)
                else:
                    self.sim.schedule_after(
                        latency,
                        lambda s=sub, t=topic, m=msg: s._deliver(t, m),
                        label=f"net:{topic}",
                    )

    # ------------------------------------------------------------------
    # Services (client/server arrows of Fig. 2)
    # ------------------------------------------------------------------
    def advertise_service(
        self, node: Node, name: str, handler: Callable[[Any], tuple[Any, float]]
    ) -> None:
        """Expose ``handler`` as service ``name`` on ``node``.

        ``handler(request)`` returns ``(response, cycles)``; cycles are
        charged to the provider's host.
        """
        if name in self._services:
            raise ValueError(f"duplicate service {name!r}")
        self._services[name] = node
        self._service_handlers[name] = handler

    def invoke_service(self, caller: Node, name: str, request: Any) -> tuple[Any, float]:
        """Run service ``name``; returns (response, blocking_delay_s)."""
        provider = self._services.get(name)
        if provider is None:
            raise KeyError(f"no such service: {name!r}")
        handler = self._service_handlers[name]
        response, cycles = handler(request)
        assert provider.host is not None and caller.host is not None
        proc = provider.host.exec_time(cycles, provider.threads, provider.parallel_profile)
        provider.host.account(provider.name, cycles, proc)
        delay = proc
        if provider.host is not caller.host:
            delay += self.transport.rtt(caller.host, provider.host, 256, self.sim.now())
        return response, delay

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def move_node(
        self, name: str, new_host: Host, transfer: bool = True, reason: str = ""
    ) -> float:
        """Move a node to ``new_host``; returns the pause duration (s).

        During the pause the node drops input (its state is in flight).
        With ``transfer=False`` the move is instantaneous — used when a
        warm replica already exists on the target. ``reason`` annotates
        the migration event ("algo1", "algo2:retreat", ...).
        """
        node = self.nodes[name]
        assert node.host is not None
        old_host = node.host
        if old_host is new_host:
            return 0.0
        state_bytes = node.on_migrate(new_host)
        pause = 0.0
        if transfer:
            latency = self.transport.send(old_host, new_host, state_bytes, self.sim.now())
            pause = latency if latency is not None else self.transport.rtt(
                old_host, new_host, state_bytes, self.sim.now()
            )
            if self.migration_fault is not None:
                pause += self.migration_fault(
                    old_host, new_host, pause, state_bytes, self.sim.now()
                )
        self._record_migration(name, old_host, new_host, pause, state_bytes, reason)
        node.begin_pause(buffer=False)
        node.host = new_host

        if pause > 0:
            self.sim.schedule_after(pause, node.end_pause, label=f"migrate:{name}")
        else:
            node.end_pause()
        return pause

    def pause_node(self, name: str) -> None:
        """Freeze a node in place; input buffers until resumed.

        Models a crashed or unreachable process (repro.faults uses it
        for server-crash containment); the node keeps its state, and
        messages delivered meanwhile are held in arrival order and
        replayed by :meth:`resume_node` — a frozen process's queue
        survives the freeze. Pausing an already-paused node is a no-op
        (the existing buffer is preserved).
        """
        self.nodes[name].begin_pause(buffer=True)

    def resume_node(self, name: str) -> None:
        """Un-freeze a paused node, replaying buffered input in order.

        Resuming a node that was never paused is a no-op.
        """
        self.nodes[name].end_pause()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def on_processed(self, hook: ProcessedHook) -> None:
        """Register a hook(node, trigger, cycles, proc_time) after each callback."""
        self._processed_hooks.append(hook)

    def on_publish(self, hook: Callable[[Node, str, Message], None]) -> None:
        """Register a hook(src_node, topic, msg) on every publish."""
        self._publish_hooks.append(hook)

    def notify_processed(self, node: Node, trigger: str, cycles: float, proc: float) -> None:
        """Internal: fan a processed-callback event to hooks."""
        for hook in self._processed_hooks:
            hook(node, trigger, cycles, proc)
        tel = self._tel
        if tel is not None:
            tel.proc_time.observe(proc, node=node.name)
            tel.invocations.inc(node=node.name)
            assert node.host is not None
            tel.telemetry.tracer.complete(
                node.name,
                ts=self.sim.now(),
                dur=proc,
                track=f"host:{node.host.name}",
                cat="node",
                trigger=trigger,
                cycles=cycles,
            )

    def _record_migration(
        self,
        name: str,
        old_host: Host,
        new_host: Host,
        pause: float,
        state_bytes: int,
        reason: str,
    ) -> None:
        """Single path for migration bookkeeping: list + event bus."""
        now = self.sim.now()
        self.migrations.append((now, name, old_host.name, new_host.name))
        tel = self._tel
        if tel is not None:
            tel.migrations.inc(node=name, dest=new_host.name)
            tel.telemetry.emit(
                "migration",
                t=now,
                track="migrations",
                node=name,
                src=old_host.name,
                dest=new_host.name,
                pause_s=pause,
                state_bytes=state_bytes,
                reason=reason,
            )


class _ExternalSource(Node):
    """Pseudo-node standing in for out-of-graph publishers in hooks."""

    def __init__(self, host: Host) -> None:
        super().__init__("__external__")
        self.host = host
