"""The fault injector: turns a :class:`FaultPlan` into simulator events.

``arm()`` walks the plan and schedules one injection event per fault
(plus a clearing event for finite windows) on the workload's own
simulator. Faults whose start time has already passed are applied
immediately — this matters for :class:`MigrationInterrupt` at t=0,
because the framework performs its initial migrations synchronously
before the event loop starts.

Every phase change is recorded in :attr:`FaultInjector.log` and, when
a telemetry object is available, emitted as ``fault_injected`` /
``fault_cleared`` events on the ``"faults"`` track — so traces show
exactly when the world turned hostile.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.sim.rng import seeded_rng

from repro.compute.host import Host
from repro.faults.plan import (
    Fault,
    FaultPlan,
    LinkDegradation,
    LinkOutage,
    MigrationInterrupt,
    PacketMangling,
    ServerCrash,
    ServerSlowdown,
    SiteOutage,
    WapDeath,
)
from repro.middleware.graph import Graph
from repro.network.fabric import NetworkFabric
from repro.network.link import WirelessLink
from repro.network.udp import ChannelFault
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.pool import WorkerPool
    from repro.sites.topology import SiteTopology
    from repro.telemetry import Telemetry


class FaultInjector:
    """Arms a :class:`FaultPlan` against one concrete workload.

    Parameters
    ----------
    sim:
        The simulator whose event queue carries the fault events.
    plan:
        The declarative plan to realize.
    link, fabric, graph:
        The network/middleware objects carrying the injection points.
        Each is optional: a fault whose injection point is missing
        (e.g. a ``LinkOutage`` with no fabric) fails loudly at
        :meth:`arm` time instead of silently doing nothing.
    lgv_host:
        The robot's host (wireless-hop detection for migration faults).
    server_hosts:
        Every offload target; ``host=None`` faults apply to all of them.
    pool:
        Optional :class:`repro.cloud.WorkerPool`. A ``ServerCrash`` on
        one of its workers triggers the pool's rebalance path — every
        request the dead worker held is re-placed on the survivors —
        and a restart drains any backlog parked while everything was
        down.
    topology:
        Optional :class:`repro.sites.topology.SiteTopology`. Required
        for ``SiteOutage`` faults; also lets a ``ServerCrash`` on a
        site worker drive that site's pool rebalance path.
    telemetry:
        Optional event sink; defaults to ``sim.telemetry``.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        *,
        link: WirelessLink | None = None,
        fabric: NetworkFabric | None = None,
        graph: Graph | None = None,
        lgv_host: Host | None = None,
        server_hosts: tuple[Host, ...],
        pool: "WorkerPool | None" = None,
        topology: "SiteTopology | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.link = link
        self.fabric = fabric
        self.graph = graph
        self.lgv_host = lgv_host
        self.server_hosts = tuple(server_hosts)
        self.pool = pool
        self.topology = topology
        self.telemetry = telemetry if telemetry is not None else sim.telemetry
        #: Phase changes as ``(virtual_time, phase, fault_kind)`` with
        #: phase in {"injected", "cleared"}.
        self.log: list[tuple[float, str, str]] = []
        self._phase_hooks: list[Callable[[float, str, str], None]] = []
        self._armed = False

    @classmethod
    def for_workload(
        cls, plan: FaultPlan, workload, telemetry: "Telemetry | None" = None
    ) -> FaultInjector:
        """Build an injector wired to a navigation-style workload.

        ``workload`` must expose ``sim``, ``fabric``, ``graph``,
        ``lgv_host``, ``gateway_host`` and ``cloud_host`` (the
        :class:`~repro.workloads.navigation.NavigationWorkload` shape).
        """
        return cls(
            workload.sim,
            plan,
            link=workload.fabric.link,
            fabric=workload.fabric,
            graph=workload.graph,
            lgv_host=workload.lgv_host,
            server_hosts=(workload.gateway_host, workload.cloud_host),
            telemetry=telemetry,
        )

    @classmethod
    def for_pool(
        cls, plan: FaultPlan, pool, telemetry: "Telemetry | None" = None
    ) -> FaultInjector:
        """Build an injector targeting a :class:`repro.cloud.WorkerPool`.

        Server faults (``ServerCrash`` / ``ServerSlowdown``) resolve
        against the pool's worker hosts and drive its rebalance path;
        network and migration faults need injection points a bare pool
        does not have, so plans containing them are rejected at
        :meth:`arm`.
        """
        return cls(
            pool.sim,
            plan,
            server_hosts=pool.worker_hosts(),
            pool=pool,
            telemetry=telemetry,
        )

    @classmethod
    def for_sites(
        cls, plan: FaultPlan, topology, telemetry: "Telemetry | None" = None
    ) -> FaultInjector:
        """Build an injector targeting a :mod:`repro.sites` city.

        ``SiteOutage`` resolves against the topology's sites; server
        faults resolve against every site's gateway and pool workers
        (crashes on workers drive the owning pool's rebalance path).
        Single-link network faults need a specific injection point a
        multi-site city does not have, so plans containing them are
        rejected at :meth:`arm`.
        """
        hosts: list[Host] = []
        for s in topology.sites:
            hosts.append(s.gateway)
            hosts.extend(s.pool.worker_hosts())
        return cls(
            topology.sites[0].sim,
            plan,
            server_hosts=tuple(hosts),
            topology=topology,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> FaultInjector:
        """Schedule every fault in the plan; returns ``self``.

        Injections (and clears) whose time is already past are applied
        immediately, in plan order. Idempotence is not attempted:
        arming twice doubles the faults.
        """
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for f in self.plan:
            apply, clear = self._handlers(f)
            self._at(f.start, apply, f"fault:{f.kind}")
            end = getattr(f, "end", None)
            if clear is not None and end is not None and end != float("inf"):
                self._at(end, clear, f"fault:{f.kind}:clear")
        return self

    def _at(self, t: float, callback, label: str) -> None:
        if t <= self.sim.now():
            callback()
        else:
            self.sim.schedule_at(t, callback, label=label)

    def _handlers(self, f: Fault):
        """(apply, clear) callbacks for one fault."""
        if isinstance(f, LinkOutage):
            self._require(f, fabric=self.fabric)
            return self._link_outage(f)
        if isinstance(f, LinkDegradation):
            self._require(f, link=self.link, fabric=self.fabric)
            return self._link_degradation(f)
        if isinstance(f, WapDeath):
            self._require(f, link=self.link)
            return self._wap_death(f)
        if isinstance(f, ServerSlowdown):
            return self._server_slowdown(f)
        if isinstance(f, ServerCrash):
            return self._server_crash(f)
        if isinstance(f, PacketMangling):
            self._require(f, fabric=self.fabric)
            return self._packet_mangling(f)
        if isinstance(f, MigrationInterrupt):
            self._require(f, graph=self.graph, fabric=self.fabric)
            return self._migration_interrupt(f)
        if isinstance(f, SiteOutage):
            self._require(f, topology=self.topology)
            return self._site_outage(f)
        raise TypeError(f"no handler for fault {f!r}")

    def _require(self, f: Fault, **components) -> None:
        """Fail loudly when a fault's injection point was not wired."""
        missing = [name for name, c in components.items() if c is None]
        if missing:
            raise ValueError(
                f"fault {f.kind!r} needs {missing} but this injector "
                "was built without them (pool-only injector?)"
            )

    # ------------------------------------------------------------------
    # Per-fault semantics
    # ------------------------------------------------------------------
    def _link_outage(self, f: LinkOutage):
        def apply() -> None:
            self.fabric.uplink.fault_blocked = True
            self.fabric.downlink.fault_blocked = True
            self._emit("injected", f, duration=f.duration)

        def clear() -> None:
            self.fabric.uplink.fault_blocked = False
            self.fabric.downlink.fault_blocked = False
            # link-recovery event: drain packets held during the outage
            self.fabric.flush_held(self.sim.now())
            self._emit("cleared", f)

        return apply, clear

    def _link_degradation(self, f: LinkDegradation):
        def apply() -> None:
            self.link.fault_rssi_offset_db += f.rssi_offset_db
            self._emit(
                "injected", f, rssi_offset_db=f.rssi_offset_db, duration=f.duration
            )

        def clear() -> None:
            self.link.fault_rssi_offset_db -= f.rssi_offset_db
            self.fabric.flush_held(self.sim.now())
            self._emit("cleared", f)

        return apply, clear

    def _wap_death(self, f: WapDeath):
        def apply() -> None:
            self.link.fault_blocked = True
            self._emit("injected", f)

        return apply, None

    def _server_slowdown(self, f: ServerSlowdown):
        hosts = self._target_hosts(f.host)

        def apply() -> None:
            for h in hosts:
                h.derate *= f.factor
            self._emit(
                "injected",
                f,
                hosts=[h.name for h in hosts],
                factor=f.factor,
                duration=f.duration,
            )

        def clear() -> None:
            for h in hosts:
                h.derate /= f.factor
            self._emit("cleared", f, hosts=[h.name for h in hosts])

        return apply, clear

    def _server_crash(self, f: ServerCrash):
        hosts = self._target_hosts(f.host)
        frozen: list[str] = []

        def apply() -> None:
            for h in hosts:
                h.up = False
                if self.graph is not None:
                    for name, node in self.graph.nodes.items():
                        if node.host is h and not node._paused:
                            self.graph.pause_node(name)
                            frozen.append(name)
            # Pool-mediated serving: the crash triggers the rebalance
            # path — everything the dead worker held is re-placed.
            for h in hosts:
                pool = self._host_pool(h)
                if pool is not None:
                    pool.on_worker_down(h)
            self._emit(
                "injected",
                f,
                hosts=[h.name for h in hosts],
                restart_after=f.restart_after,
            )

        def restart() -> None:
            for h in hosts:
                h.up = True
            if self.graph is not None:
                for name in frozen:
                    node = self.graph.nodes.get(name)
                    # resume only what we froze and what is still stranded
                    # there — the framework may have rescued it meanwhile
                    if node is not None and node._paused and node.host in hosts:
                        self.graph.resume_node(name)
            frozen.clear()
            for h in hosts:
                pool = self._host_pool(h)
                if pool is not None:
                    pool.on_worker_up(h)
            self._emit("cleared", f, hosts=[h.name for h in hosts])

        if f.restart_after != float("inf"):
            orig_apply = apply

            def apply_with_restart() -> None:
                orig_apply()
                self.sim.schedule_after(
                    f.restart_after, restart, label=f"fault:{f.kind}:restart"
                )

            return apply_with_restart, None
        return apply, None

    def _packet_mangling(self, f: PacketMangling):
        def apply() -> None:
            self.fabric.uplink.fault = ChannelFault(
                rng=seeded_rng(f.seed),
                drop_p=f.drop_p,
                corrupt_p=f.corrupt_p,
                duplicate_p=f.duplicate_p,
            )
            self.fabric.downlink.fault = ChannelFault(
                rng=seeded_rng(f.seed + 1),
                drop_p=f.drop_p,
                corrupt_p=f.corrupt_p,
                duplicate_p=f.duplicate_p,
            )
            self._emit(
                "injected",
                f,
                drop_p=f.drop_p,
                corrupt_p=f.corrupt_p,
                duplicate_p=f.duplicate_p,
                duration=f.duration,
            )

        def clear() -> None:
            self.fabric.uplink.fault = None
            self.fabric.downlink.fault = None
            self._emit("cleared", f)

        return apply, clear

    def _migration_interrupt(self, f: MigrationInterrupt):
        def hook(
            old_host: Host, new_host: Host, pause: float, state_bytes: int, now: float
        ) -> float:
            if old_host.on_robot == new_host.on_robot or pause <= 0:
                return 0.0  # wired/local transfer: not our target
            if self.graph.migration_fault is hook:
                self.graph.migration_fault = None  # one-shot
            extra = f.at_fraction * pause + self.fabric.rtt(
                old_host, new_host, 64, now
            )
            self._emit(
                "injected",
                f,
                at_fraction=f.at_fraction,
                lost_s=f.at_fraction * pause,
                extra_s=extra,
                state_bytes=state_bytes,
            )
            return extra

        def apply() -> None:
            self.graph.migration_fault = hook

        return apply, None

    def _site_outage(self, f: SiteOutage):
        site = self.topology.site(f.site)  # KeyError for unknown sites

        def apply() -> None:
            site.radio.set_blocked(True)
            site.gateway.up = False
            for h in site.pool.worker_hosts():
                h.up = False
                site.pool.on_worker_down(h)
            self._emit("injected", f, site=f.site, duration=f.duration)

        def clear() -> None:
            site.gateway.up = True
            for h in site.pool.worker_hosts():
                h.up = True
                site.pool.on_worker_up(h)
            site.radio.set_blocked(False)
            site.radio.flush_held(self.sim.now())
            self._emit("cleared", f, site=f.site)

        return apply, clear

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _host_pool(self, h: Host) -> "WorkerPool | None":
        """The pool whose rebalance path a crash of ``h`` should drive."""
        if self.pool is not None and h in self.pool.worker_hosts():
            return self.pool
        if self.topology is not None:
            for s in self.topology.sites:
                if h in s.pool.worker_hosts():
                    return s.pool
        return None

    def _target_hosts(self, name: str | None) -> tuple[Host, ...]:
        if name is None:
            return self.server_hosts
        matches = tuple(h for h in self.server_hosts if h.name == name)
        if not matches:
            known = [h.name for h in self.server_hosts]
            raise ValueError(f"unknown server host {name!r}; have {known}")
        return matches

    def on_phase(self, hook: Callable[[float, str, str], None]) -> FaultInjector:
        """Register ``hook(t, phase, kind)`` for every fault transition.

        Lets experiments correlate their own observations (lease
        expiries, recovery restores) with injection/clear times without
        polling :attr:`log`; returns ``self`` for chaining.
        """
        self._phase_hooks.append(hook)
        return self

    def _emit(self, phase: str, fault: Fault, **fields) -> None:
        now = self.sim.now()
        self.log.append((now, phase, fault.kind))
        for hook in self._phase_hooks:
            hook(now, phase, fault.kind)
        if self.telemetry is not None:
            self.telemetry.emit(
                f"fault_{phase}",
                t=now,
                track="faults",
                kind=fault.kind,
                start=fault.start,
                **fields,
            )
