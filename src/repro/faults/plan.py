"""Declarative fault plans.

A :class:`FaultPlan` is an immutable list of typed faults, each with a
start time (and, for window faults, a duration). Plans are pure data:
nothing happens until a :class:`~repro.faults.injector.FaultInjector`
arms the plan against a concrete workload, at which point every fault
becomes ordinary simulator events — injected and cleared at exact
virtual times, so a faulted run is as deterministic and replayable as
a clean one. An empty plan schedules nothing and consumes no
randomness: experiments without faults are bit-identical to a build
without this module.

Taxonomy (see docs/faults.md):

========================  ==================================================
fault                     models
========================  ==================================================
:class:`LinkOutage`       data-plane radio outage: the UDP driver blocks
                          (Fig. 7 semantics) while the TCP control plane
                          still limps through — latency probes stay
                          deceptively healthy, exactly the pathology §VI
                          argues Algorithm 2 must survive.
:class:`LinkDegradation`  an interference window: additive RSSI penalty,
                          degrading quality/rate without killing the link.
:class:`WapDeath`         the access point dies: the whole radio — data
                          *and* control plane — goes dark, permanently.
:class:`ServerSlowdown`   frequency derate on a server (thermal throttle,
                          noisy neighbor): every execution takes
                          ``factor`` times longer.
:class:`ServerCrash`      the server process dies (optionally restarting
                          later): its nodes freeze and the fabric drops
                          datagrams to/from it.
:class:`PacketMangling`   transport gremlins: per-packet drop / duplicate
                          / corrupt probabilities on both UDP directions.
:class:`MigrationInterrupt`  a state transfer over the wireless hop is cut
                          mid-flight and must restart: one migration pays
                          the lost fraction plus a control-plane round
                          trip.
:class:`SiteOutage`       an entire edge site goes dark — its radio
                          (:class:`WapDeath` semantics on every link),
                          gateway, and all pool workers
                          (:class:`ServerCrash` each) — for the window.
========================  ==================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Fault:
    """Base fault: something goes wrong at virtual time ``start``."""

    start: float = 0.0

    #: snake_case tag used in telemetry and logs.
    kind = "fault"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")


@dataclass(frozen=True)
class WindowFault(Fault):
    """A fault active over ``[start, start + duration)``.

    The default duration is infinite — a permanent fault that never
    clears.
    """

    duration: float = math.inf

    kind = "window_fault"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"fault duration must be > 0, got {self.duration}")

    @property
    def end(self) -> float:
        """Absolute clear time (inf for permanent faults)."""
        return self.start + self.duration


@dataclass(frozen=True)
class LinkOutage(WindowFault):
    """Data-plane radio outage: UDP blocks, TCP control still works.

    This reproduces the paper's worst case — the driver holds/discards
    datagrams while small reliable control messages (the RTT probes)
    eventually get through, so latency statistics keep looking fine
    as the robot is starved of velocity commands.
    """

    kind = "link_outage"


@dataclass(frozen=True)
class LinkDegradation(WindowFault):
    """Interference window: additive RSSI penalty in dB (negative)."""

    rssi_offset_db: float = -14.0

    kind = "link_degradation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rssi_offset_db >= 0:
            raise ValueError(
                f"rssi_offset_db must be negative, got {self.rssi_offset_db}"
            )


@dataclass(frozen=True)
class WapDeath(Fault):
    """The access point dies permanently: all radio traffic stops.

    Unlike :class:`LinkOutage` this also kills the control plane, so
    reliable sends burn their full retransmission budget — RTT becomes
    *honestly* terrible rather than deceptively healthy.
    """

    kind = "wap_death"


@dataclass(frozen=True)
class ServerSlowdown(WindowFault):
    """Frequency derate on a server host: executions take ``factor``×.

    ``host=None`` applies to every server host the injector knows.
    """

    factor: float = 4.0
    host: str | None = None

    kind = "server_slowdown"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 1.0:
            raise ValueError(f"slowdown factor must be > 1, got {self.factor}")


@dataclass(frozen=True)
class ServerCrash(Fault):
    """A server host crashes at ``start``; optionally restarts later.

    While down the fabric refuses its datagrams and its resident nodes
    are frozen. On restart the nodes still placed there resume with
    their state intact (a warm restart). ``restart_after=inf`` (the
    default) means it never comes back.
    """

    restart_after: float = math.inf
    host: str | None = None

    kind = "server_crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.restart_after <= 0:
            raise ValueError(
                f"restart_after must be > 0, got {self.restart_after}"
            )


@dataclass(frozen=True)
class PacketMangling(WindowFault):
    """Per-packet transport gremlins on both UDP directions.

    Each healthy send is independently dropped / corrupted /
    duplicated with the given probabilities (summing to <= 1). The
    draws come from a dedicated seeded generator so the link's own
    randomness — and every unfaulted run — is untouched.
    """

    drop_p: float = 0.0
    corrupt_p: float = 0.0
    duplicate_p: float = 0.0
    seed: int = 0

    kind = "packet_mangling"

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("drop_p", "corrupt_p", "duplicate_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.drop_p + self.corrupt_p + self.duplicate_p > 1.0:
            raise ValueError("drop_p + corrupt_p + duplicate_p must be <= 1")


@dataclass(frozen=True)
class MigrationInterrupt(Fault):
    """The next wireless-hop state transfer after ``start`` is cut.

    The transfer loses ``at_fraction`` of its progress and restarts
    after a control-plane round trip — the node's pause grows by that
    much. One-shot: only the first qualifying migration is hit.
    """

    at_fraction: float = 0.5

    kind = "migration_interrupt"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.at_fraction < 1.0:
            raise ValueError(
                f"at_fraction must be in (0, 1), got {self.at_fraction}"
            )


@dataclass(frozen=True)
class SiteOutage(WindowFault):
    """An entire edge site goes dark: radio, gateway, and every worker.

    The composite site-level fault for :mod:`repro.sites` cities. For
    the window the site's radio blocks every tenant link (data *and*
    control, :class:`WapDeath` semantics, so heartbeats fall silent and
    leases expire honestly), the gateway refuses backhaul traffic (2PC
    phases touching it burn their timeout budgets), and every pool
    worker crashes (:class:`ServerCrash` semantics, in-flight requests
    dropped). Clearing restores the site cold: hosts come back up, the
    radio unblocks and drains held packets — but evacuated tenants only
    return when the selector re-ranks the site.
    """

    site: str = ""

    kind = "site_outage"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.site:
            raise ValueError("SiteOutage needs a site name")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered collection of faults.

    The empty plan is the identity: arming it schedules nothing and
    leaves every experiment bit-identical to an unfaulted run.
    """

    faults: tuple[Fault, ...] = field(default=())

    def __post_init__(self) -> None:
        for f in self.faults:
            if not isinstance(f, Fault):
                raise TypeError(f"not a Fault: {f!r}")

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)
