"""Declarative, deterministic fault injection (the robustness layer).

Build a :class:`FaultPlan` from typed faults, arm it against a
workload with :class:`FaultInjector`, and run: every fault fires as an
ordinary simulator event at an exact virtual time. See docs/faults.md.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    Fault,
    FaultPlan,
    LinkDegradation,
    LinkOutage,
    MigrationInterrupt,
    PacketMangling,
    ServerCrash,
    ServerSlowdown,
    SiteOutage,
    WapDeath,
    WindowFault,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "LinkOutage",
    "MigrationInterrupt",
    "PacketMangling",
    "ServerCrash",
    "ServerSlowdown",
    "SiteOutage",
    "WapDeath",
    "WindowFault",
]
