"""SIM checkers: kernel reentrancy, float equality, defaults, telemetry guards.

Where the DET rules keep host nondeterminism out, these four keep the
simulation's own conventions honest: callbacks never re-enter the
kernel, quantities carried as floats are never compared with ``==``,
defaults are never shared mutable state, and the nullable telemetry
handle is always tested before use.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name, receiver_text

#: Scheduling entry points whose callback argument registers sim callbacks.
_SCHEDULING_FUNCS = frozenset({"schedule_at", "schedule_after", "every", "push"})

#: Receiver names that denote the simulator kernel.
_SIM_NAMES = frozenset({"sim", "simulator", "_sim", "kernel"})


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ReentrantRunChecker(Checker):
    """SIM001 — event callbacks must not call ``Simulator.run``.

    ``run`` drains the queue; calling it from inside a firing callback
    nests the drain loop and double-fires events. The kernel also
    raises at runtime (see ``Simulator.step``); this checker catches
    the pattern before it ever runs. Heuristic: a function is a
    *callback* if its name is passed to ``schedule_at``/
    ``schedule_after``/``every``/``push`` anywhere in the module; a
    *kernel call* is ``.run(...)`` on a receiver named ``sim``/
    ``simulator``/``_sim``/``kernel``.
    """

    code = "SIM001"

    def run(self) -> list:
        callbacks: set[str] = set()
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            fname = _terminal_name(node.func)
            if fname not in _SCHEDULING_FUNCS:
                continue
            cb_args: list[ast.expr] = []
            if len(node.args) >= 2:
                cb_args.append(node.args[1])
            for kw in node.keywords:
                if kw.arg == "callback":
                    cb_args.append(kw.value)
            for cb in cb_args:
                name = _terminal_name(cb)
                if name is not None:
                    callbacks.add(name)
                elif isinstance(cb, ast.Lambda):
                    self._check_body(cb.body, context="lambda callback")
        for node in ast.walk(self.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in callbacks
            ):
                for stmt in node.body:
                    self._check_body(stmt, context=f"callback {node.name!r}")
        return self.violations

    def _check_body(self, node: ast.AST, context: str) -> None:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "run"
                and _terminal_name(sub.func.value) in _SIM_NAMES
            ):
                self.report(
                    sub,
                    f"{context} calls Simulator.run reentrantly; "
                    "schedule follow-up events instead",
                )


#: Identifier tokens that mark a value as sim-time or energy.
_QUANTITY_TOKENS = frozenset(
    {"time", "timestamp", "now", "deadline", "elapsed", "duration", "energy", "joules"}
)
_QUANTITY_EXACT = frozenset({"t", "t0", "t1", "dur", "wh"})


def _smells_like_quantity(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        return _terminal_name(node.func) == "now"
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    if lowered in _QUANTITY_EXACT:
        return True
    return any(tok in _QUANTITY_TOKENS for tok in lowered.split("_"))


class FloatEqChecker(Checker):
    """SIM002 — no float ``==``/``!=`` on sim-time or energy quantities.

    Virtual times and energy integrals are accumulated floats; exact
    equality silently turns into "never true" after any reordering of
    arithmetic. Compare with tolerances (``math.isclose``) or
    inequalities. Heuristic: either side of the comparison is an
    identifier (or ``.now()`` call) that smells like a time/energy
    quantity.
    """

    code = "SIM002"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(isinstance(o, ast.Constant) and o.value is None for o in (lhs, rhs)):
                continue
            if _smells_like_quantity(lhs) or _smells_like_quantity(rhs):
                self.report(
                    node,
                    "float ==/!= on a sim-time/energy quantity; use "
                    "math.isclose or an inequality",
                )
                break
        self.generic_visit(node)


_MUTABLE_CTORS = frozenset({"list", "dict", "set", "collections.defaultdict", "bytearray"})


class MutableDefaultChecker(Checker):
    """SIM003 — mutable default arguments are shared across calls.

    A ``def f(log=[])`` default is evaluated once and mutated by every
    caller — cross-run state that survives between "independent"
    missions. Use ``None`` plus an in-body default, or a dataclass
    ``field(default_factory=...)``.
    """

    code = "SIM003"

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for d in defaults:
            if d is None:
                continue
            bad = isinstance(d, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp))
            if not bad and isinstance(d, ast.Call):
                bad = dotted_name(d.func, self.aliases) in _MUTABLE_CTORS
            if bad:
                self.report(
                    d,
                    "mutable default argument is shared across calls; "
                    "default to None and construct in the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def _telemetry_root(func: ast.expr) -> ast.expr | None:
    """The telemetry-handle prefix of a call chain, if any.

    For ``self.telemetry.emit`` the root is ``self.telemetry``; for
    ``tel.metrics.counter`` it is ``tel``. Returns ``None`` when the
    chain is not routed through a telemetry handle.
    """
    chain: list[ast.expr] = []
    cur = func
    while isinstance(cur, ast.Attribute):
        chain.append(cur)
        cur = cur.value
    chain.append(cur)
    # walk outward from the base: the first element that *is* the handle
    for expr in reversed(chain):
        if isinstance(expr, ast.Name) and expr.id in {"tel", "telemetry"}:
            return expr
        if isinstance(expr, ast.Attribute) and expr.attr == "telemetry":
            return expr
    return None


def _guard_key(name: str) -> str:
    """Dump form of a bare name, for guard substring matching."""
    return receiver_text(ast.parse(name, mode="eval").body)


class TelemetryGuardChecker(Checker):
    """SIM004 — calls through a nullable telemetry handle must be guarded.

    The repo-wide convention (see ``repro.telemetry.hub``) is::

        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("...").inc()

    This checker flags ``X.emit(...)`` / ``X.tracer...`` / ``X.metrics...``
    calls whose handle ``X`` is not dominated by a test of ``X``: an
    enclosing ``if``/``while`` mentioning it, a preceding early-return
    guard (``if X is None: return``), a short-circuit ``X and ...`` /
    ``... if X else ...``, or a non-optional ``Telemetry`` parameter
    annotation on the enclosing function.
    """

    code = "SIM004"

    def run(self) -> list:
        self._walk_block(self.tree.body, guards=[])
        return self.violations

    # -- statement-level traversal ------------------------------------
    def _walk_block(self, stmts: list[ast.stmt], guards: list[str]) -> None:
        guards = list(guards)
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_guards = guards + self._annotation_guards(stmt)
                self._walk_block(stmt.body, fn_guards)
            elif isinstance(stmt, ast.ClassDef):
                self._walk_block(stmt.body, guards)
            elif isinstance(stmt, (ast.If, ast.While)):
                test_text = receiver_text(stmt.test)
                self._scan_expr(stmt.test, guards)
                inner = guards + [test_text]
                self._walk_block(stmt.body, inner)
                orelse = stmt.orelse
                self._walk_block(orelse, inner)
                if stmt.body and isinstance(
                    stmt.body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
                ):
                    # early-exit guard dominates the rest of this block
                    guards.append(test_text)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, guards)
                self._walk_block(stmt.body, guards)
                self._walk_block(stmt.orelse, guards)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, guards)
                self._walk_block(stmt.body, guards)
            elif isinstance(stmt, ast.Try):
                self._walk_block(stmt.body, guards)
                for handler in stmt.handlers:
                    self._walk_block(handler.body, guards)
                self._walk_block(stmt.orelse, guards)
                self._walk_block(stmt.finalbody, guards)
            else:
                for expr in ast.iter_child_nodes(stmt):
                    if isinstance(expr, ast.expr):
                        self._scan_expr(expr, guards)

    def _annotation_guards(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        """Params annotated plain ``Telemetry`` are non-nullable handles."""
        out: list[str] = []
        args = [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
        for a in args:
            ann = a.annotation
            text: str | None = None
            if isinstance(ann, ast.Name):
                text = ann.id
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                text = ann.value
            if text == "Telemetry":
                out.append(_guard_key(a.arg))
        return out

    # -- expression-level traversal -----------------------------------
    def _scan_expr(self, node: ast.expr, guards: list[str]) -> None:
        if isinstance(node, ast.BoolOp):
            local = list(guards)
            for value in node.values:
                self._scan_expr(value, local)
                local.append(receiver_text(value))
            return
        if isinstance(node, ast.IfExp):
            test_text = receiver_text(node.test)
            self._scan_expr(node.test, guards)
            self._scan_expr(node.body, guards + [test_text])
            self._scan_expr(node.orelse, guards + [test_text])
            return
        if isinstance(node, ast.Call):
            root = _telemetry_root(node.func)
            if root is not None and not self._is_guarded(root, guards):
                self.report(
                    node,
                    "call through nullable telemetry handle without a "
                    "None-guard; wrap in 'if tel is not None:'",
                )
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, guards)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guards)

    def _is_guarded(self, root: ast.expr, guards: list[str]) -> bool:
        key = receiver_text(root)
        return any(key in g for g in guards)
