"""``python -m repro lint`` — the command-line face of the pass.

Exit status is 0 when clean, 1 when violations were found, 2 on usage
or parse errors — so CI can gate on it directly. The cache under
``.lint-cache/`` is on by default (``--no-cache`` for a cold run);
``--baseline``/``--write-baseline`` let a new checker land before its
sweep finishes, and ``--fix-suppressions`` rewrites stale
``# lint: ok(...)`` comments in place.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import filter_new, load_baseline, write_baseline
from repro.lint.engine import KNOWN_CODES, run_lint
from repro.lint.suppress import fix_suppressions


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Determinism & sim-safety static analysis for sim code.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directory trees to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated checker codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="fail only on violations not recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current violations to FILE and exit 0",
    )
    parser.add_argument(
        "--fix-suppressions",
        action="store_true",
        help="rewrite stale `# lint: ok(...)` comments in place (LNT001)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=".lint-cache",
        help="cache directory (default: .lint-cache)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    select = None
    if args.select:
        select = sorted({c.strip() for c in args.select.split(",") if c.strip()})
        unknown = set(select) - KNOWN_CODES
        if unknown:
            print(
                f"unknown checker code(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(KNOWN_CODES))})",
                file=sys.stderr,
            )
            return 2

    cache_dir = None if args.no_cache else args.cache_dir
    try:
        run = run_lint(args.paths, select=select, cache_dir=cache_dir)
    except (OSError, SyntaxError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.fix_suppressions:
        fixed = 0
        for fs in run.files:
            stale = [
                e
                for e in fs.suppressions.stale_entries(frozenset({"*"} | KNOWN_CODES))
                if "LNT001" not in fs.exempt
            ]
            if stale:
                Path(fs.path).write_text(fix_suppressions(fs.source, stale))
                fixed += len(stale)
        print(
            f"repro lint: rewrote {fixed} stale suppression"
            f"{'s' if fixed != 1 else ''}",
            file=sys.stderr,
        )
        return 0

    if args.write_baseline:
        write_baseline(run.violations, args.write_baseline)
        print(
            f"repro lint: baseline of {len(run.violations)} violation"
            f"{'s' if len(run.violations) != 1 else ''} "
            f"written to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    violations = run.violations
    if args.baseline:
        try:
            violations = filter_new(violations, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"repro lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(json.dumps([v.to_json() for v in violations], indent=2))
    else:
        for v in violations:
            print(v.render())
        n = len(violations)
        summary = (
            f"repro lint: {n} violation{'s' if n != 1 else ''} found"
            if n
            else "repro lint: clean"
        )
        if run.cache is not None:
            summary += f" ({run.cache.hits} cached, {run.cache.misses} analyzed)"
        print(summary, file=sys.stderr)
    return 1 if violations else 0
