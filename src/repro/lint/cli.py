"""``python -m repro lint`` — the command-line face of the pass.

Exit status is 0 when clean, 1 when violations were found, 2 on usage
or parse errors — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.engine import ALL_CHECKERS, lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Determinism & sim-safety static analysis for sim code.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directory trees to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated checker codes to run (default: all)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    checkers = list(ALL_CHECKERS)
    if args.select:
        wanted = {c.strip() for c in args.select.split(",") if c.strip()}
        known = {c.code for c in ALL_CHECKERS}
        unknown = wanted - known
        if unknown:
            print(
                f"unknown checker code(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        checkers = [c for c in ALL_CHECKERS if c.code in wanted]

    try:
        violations = lint_paths(args.paths, checkers=checkers)
    except (OSError, SyntaxError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([v.to_json() for v in violations], indent=2))
    else:
        for v in violations:
            print(v.render())
        n = len(violations)
        print(
            f"repro lint: {n} violation{'s' if n != 1 else ''} found"
            if n
            else "repro lint: clean",
            file=sys.stderr,
        )
    return 1 if violations else 0
