"""DET005 — the transitive-closure determinism checker.

DET001/DET002/DET004 flag an entropy primitive *where it is written*.
DET005 flags it *where it matters*: any function reachable from sim
context — a scheduled callback, a :class:`Process` tick, a middleware
timer/subscription, an ``on_start``/``on_tick`` hook — that transitively
reads wall-clock time, ambient entropy, or unseeded randomness. A
``time.time()`` two helpers below a DES callback corrupts replay just
as surely as one inside it; the per-file rules cannot see the chain,
this one reports it end to end::

    fixture.py:12:8 DET005 sim callback 'Worker.tick' reaches wall-clock
    read time.time(): Worker.tick -> poll_status -> stamp
    (time.time at util.py:40); route time through sim.now() and
    randomness through sim.rng

A primitive that is *sanctioned at the sink* — carrying an inline
``# lint: ok(DET00x): reason`` or living in a file the allowlist
exempts for that code — is trusted from every caller and never
produces a chain. Routing the same helper through ``sim.rng`` /
``sim.now()`` removes the sink entirely, which is the fix the message
asks for.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Any

from repro.lint.callgraph import ProjectIndex
from repro.lint.violations import Violation

#: ``sanctioned(path, code, line)`` — True when the entropy primitive
#: at that location is explicitly allowed (suppression or allowlist).
Sanctioned = Callable[[str, str, int], bool]


class DeterminismClosure:
    """Whole-program reachability from sim roots to entropy sinks."""

    code = "DET005"

    @classmethod
    def run_project(
        cls, index: ProjectIndex, sanctioned: Sanctioned
    ) -> list[Violation]:
        # Functions with at least one unsanctioned entropy primitive.
        sinks: dict[tuple[str, str], list[dict[str, Any]]] = {}
        for key, info in index.functions.items():
            hot = [
                e
                for e in info["entropy"]
                if not sanctioned(key[0], e["code"], e["line"])
            ]
            if hot:
                sinks[key] = hot
        if not sinks:
            return []

        violations: list[Violation] = []
        for root, _reg_line in index.roots():
            violations.extend(cls._chains_from(index, root, sinks))
        return violations

    @classmethod
    def _chains_from(
        cls,
        index: ProjectIndex,
        root: tuple[str, str],
        sinks: dict[tuple[str, str], list[dict[str, Any]]],
    ) -> list[Violation]:
        """BFS from ``root``; one violation per reached sink function.

        BFS order makes the reported chain a *shortest* call chain, so
        the message is the tightest explanation of the reach. The root
        itself is excluded — a primitive directly inside a callback is
        already flagged by the per-file rule at full precision.
        """
        parent: dict[tuple[str, str], tuple[tuple[str, str], int]] = {}
        seen = {root}
        queue = deque([root])
        out: list[Violation] = []
        while queue:
            cur = queue.popleft()
            for callee, line in index.callees(cur):
                if callee in seen:
                    continue
                seen.add(callee)
                parent[callee] = (cur, line)
                if callee in sinks:
                    out.append(cls._report(index, root, callee, sinks[callee], parent))
                queue.append(callee)
        return out

    @classmethod
    def _report(
        cls,
        index: ProjectIndex,
        root: tuple[str, str],
        sink: tuple[str, str],
        entropy: list[dict[str, Any]],
        parent: dict[tuple[str, str], tuple[tuple[str, str], int]],
    ) -> Violation:
        # Reconstruct root -> ... -> sink and the first hop's call line,
        # which is where the violation is anchored (and suppressible).
        chain = [sink]
        while chain[-1] != root:
            chain.append(parent[chain[-1]][0])
        chain.reverse()
        first_hop_line = parent[chain[1]][1]
        names = " -> ".join(q for _p, q in chain)
        prim = entropy[0]
        kind = {
            "DET001": "wall-clock read",
            "DET002": "unseeded randomness",
            "DET004": "ambient entropy",
        }[prim["code"]]
        root_info = index.functions[root]
        return Violation(
            path=root[0],
            line=first_hop_line,
            col=0,
            code=cls.code,
            message=(
                f"sim callback {root_info['qualname']!r} reaches {kind} "
                f"{prim['name']}(): {names} ({prim['name']} at "
                f"{sink[0]}:{prim['line']}); route time through sim.now() "
                "and randomness through sim.rng"
            ),
        )
