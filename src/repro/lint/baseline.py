"""Violation baselines: land a checker before its sweep finishes.

``repro lint --write-baseline lint-baseline.json`` records the current
violation population; ``repro lint --baseline lint-baseline.json`` then
fails only on *new* violations. The baseline is a multiset keyed by
``(path, code)`` — deliberately not by line, so unrelated edits that
shift line numbers don't resurrect baselined findings, while adding a
second RES001 leak to a file that had one *does* fail (the count
grew). Shrinking counts are fine and are how a baseline burns down.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.violations import Violation

_VERSION = 1


def baseline_counts(violations: list[Violation]) -> dict[str, int]:
    """Multiset of findings as ``"path::code" -> count``."""
    return dict(Counter(f"{v.path}::{v.code}" for v in violations))


def write_baseline(violations: list[Violation], path: str | Path) -> None:
    payload = {"version": _VERSION, "counts": baseline_counts(violations)}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: str | Path) -> dict[str, int]:
    payload = json.loads(Path(path).read_text())
    counts = payload.get("counts", {})
    return {str(k): int(v) for k, v in counts.items()}


def filter_new(
    violations: list[Violation], baseline: dict[str, int]
) -> list[Violation]:
    """Violations beyond the baselined count for their (path, code).

    Within one key the *first* ``count`` findings (in sorted order) are
    considered baselined and the remainder new — stable, if arbitrary,
    when a file holds both an old and a new instance of the same code.
    """
    budget = dict(baseline)
    out: list[Violation] = []
    for v in sorted(violations):
        key = f"{v.path}::{v.code}"
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            out.append(v)
    return out
