"""PRO001 — 2PC migration protocol discipline.

``repro.recovery.protocol.TwoPhaseMigrator`` (and anything shaped like
it) drives a PREPARE -> TRANSFER -> COMMIT state machine whose safety
argument — zero duplicate completions across crash-split batches —
depends on every phase method either *advancing* the machine, *aborting*
it, or *finalizing* the in-flight registry before control leaves. A
phase method that returns early without doing any of those leaves a
ticket stranded in ``inflight`` forever: the lease supervisor times it
out eventually, but the protocol's own invariant is already broken.

The checker recognizes a protocol-driver class structurally: its method
names cover at least two of the phase tokens (``prepare``,
``transfer``, ``commit``) and at least one abort token (``abort``,
``rollback``). In each phase method, every CFG path must contain an
**action** —

* a call whose terminal name carries a phase or abort token (this
  includes the ``self._after(..., lambda: self._commit(t))`` scheduling
  idiom — the lambda body is scanned), or
* a registry finalization: ``del``/``.pop`` on an attribute whose name
  contains ``inflight`` or ``pending``

— unless the path exits through a *guard return*: a ``return`` that is
the sole body of an ``if`` and yields nothing truthy (``return``,
``return None``, ``return False``). Guards like "this ticket is no
longer mine, do nothing" are the protocol's idempotence armor and are
explicitly legal.

Two call-site rules ride along: constructing a ``*Migrator`` with only
one of ``on_commit``/``on_abort`` (a handoff that celebrates success
but never hears about failure, or vice versa), and discarding the
result of ``<migrator>.request(...)`` — the boolean is the only signal
that the transaction was refused and the caller must release whatever
it reserved.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name
from repro.lint.cfg import build_cfg

PHASE_TOKENS = ("prepare", "transfer", "commit")
ABORT_TOKENS = ("abort", "rollback")
#: Attribute names that hold the in-flight transaction registry.
REGISTRY_TOKENS = ("inflight", "pending")


def _tokens_in(name: str, tokens: tuple[str, ...]) -> set[str]:
    low = name.lower()
    return {t for t in tokens if t in low}


def _is_protocol_class(node: ast.ClassDef) -> bool:
    phases: set[str] = set()
    aborts: set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            phases |= _tokens_in(stmt.name, PHASE_TOKENS)
            aborts |= _tokens_in(stmt.name, ABORT_TOKENS)
    return len(phases) >= 2 and bool(aborts)


def _is_action(part: ast.AST) -> bool:
    """Whether this fragment advances, aborts, or finalizes the FSM."""
    for sub in ast.walk(part):
        if isinstance(sub, ast.Call):
            name: str | None = None
            if isinstance(sub.func, ast.Attribute):
                name = sub.func.attr
            elif isinstance(sub.func, ast.Name):
                name = sub.func.id
            if name is not None:
                if _tokens_in(name, PHASE_TOKENS + ABORT_TOKENS):
                    return True
                if name == "pop" and _touches_registry(sub.func):
                    return True
        elif isinstance(sub, ast.Delete):
            if any(_touches_registry(t) for t in sub.targets):
                return True
    return False


def _touches_registry(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and any(
            t in sub.attr.lower() for t in REGISTRY_TOKENS
        ):
            return True
    return False


def _guard_returns(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[int]:
    """ids() of Return nodes that are idempotence guards (see module doc)."""
    out: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.If) and len(node.body) == 1:
            ret = node.body[0]
            if isinstance(ret, ast.Return) and _yields_nothing(ret.value):
                out.add(id(ret))
    return out


def _yields_nothing(value: ast.expr | None) -> bool:
    return value is None or (
        isinstance(value, ast.Constant) and not bool(value.value)
    )


class ProtocolFSMChecker(Checker):
    """PRO001: every phase-method exit advances, aborts, or finalizes."""

    code = "PRO001"
    message = "protocol phase method exits without advancing or aborting"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_protocol_class(node):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _tokens_in(stmt.name, PHASE_TOKENS) and not _tokens_in(
                        stmt.name, ABORT_TOKENS
                    ):
                        self._check_phase(stmt)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # ctor handler asymmetry: *Migrator(..., on_commit=...) without
        # on_abort (or the reverse) hears about one outcome only
        name = dotted_name(node.func, self.aliases)
        terminal = name.split(".")[-1] if name else None
        if terminal is not None and terminal.endswith("Migrator"):
            given = {
                kw.arg
                for kw in node.keywords
                if kw.arg in ("on_commit", "on_abort")
                and not (isinstance(kw.value, ast.Constant) and kw.value.value is None)
            }
            if len(given) == 1:
                missing = ({"on_commit", "on_abort"} - given).pop()
                self.report(
                    node,
                    f"{terminal} constructed with {given.pop()!r} but no "
                    f"{missing!r}; a 2PC driver must observe both outcomes",
                )
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # discarded `<migrator>.request(...)` result
        call = node.value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            if call.func.attr == "request":
                recv = dotted_name(call.func.value, self.aliases) or ""
                if "migrator" in recv.lower():
                    self.report(
                        call,
                        "result of migrator.request() discarded; False means "
                        "the transaction was refused and reservations must be "
                        "released",
                    )
        self.generic_visit(node)

    def _check_phase(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cfg = build_cfg(func)
        guards = _guard_returns(func)
        acted_cache = {
            b.bid: any(_is_action(p) for p in b.parts) for b in cfg.blocks
        }
        # DFS over (block, acted-yet?); flag the step from which an
        # action-free path escapes (once per escaping step)
        flagged: set[int] = set()
        seen: set[tuple[int, bool]] = set()
        stack: list[tuple[object, bool, object]] = [
            (succ, acted_cache[succ.bid] if succ.role != "exit" else False, cfg.entry)
            for succ, _k in cfg.entry.succs
        ]
        while stack:
            block, acted, prev = stack.pop()
            if block.role in ("exit", "raise_exit"):
                if acted or block.role == "raise_exit":
                    # exceptions crash the run loudly; PRO001 polices the
                    # silent returns
                    continue
                node = getattr(prev, "node", None)
                if isinstance(node, ast.Return) and id(node) in guards:
                    continue
                bid = getattr(prev, "bid", -1)
                if bid not in flagged:
                    flagged.add(bid)
                    anchor = node if node is not None else func
                    self.report(
                        anchor,
                        f"phase method {func.name!r} can exit here without "
                        "advancing the PREPARE/TRANSFER/COMMIT machine, "
                        "aborting, or finalizing the in-flight registry",
                    )
                continue
            state = (block.bid, acted)
            if state in seen:
                continue
            seen.add(state)
            for succ, _k in block.succs:
                nxt = acted or (
                    succ.role not in ("exit", "raise_exit") and acted_cache[succ.bid]
                )
                stack.append((succ, nxt, block))
        return
