"""Project-wide call graph: per-module summaries + name resolution.

The whole-program half of the pass. Each module is distilled into a
:class:`ModuleSummary` — its functions, the calls each makes, the
entropy primitives it touches, and every function reference it
registers as a simulator callback. Summaries are plain JSON-able dicts
(so the incremental cache can persist them per file), and a
:class:`ProjectIndex` stitches them into a call graph on demand.

Resolution is *name-based and deliberately conservative*: a call edge
is added only when the callee is unambiguous —

* a plain name defined at module level in the same module, or imported
  from another project module (via the alias map);
* ``self.method()`` resolved in the enclosing class, then through its
  textually-named base classes, then by project-unique method name;
* ``obj.method()`` resolved only when exactly *one* class in the whole
  project defines ``method`` (otherwise the edge is dropped — a missed
  edge costs a finding, a wrong edge costs a false alarm, and the
  checker's credibility with it).

Sim-context roots (the functions DET005 treats as "inside the
simulation") are every function reference handed to the kernel's
scheduling surfaces (``schedule_at``/``schedule_after``/``every``/
``push``/``create_timer``/``subscribe``/``Process``) plus the
middleware hook methods (``on_start``/``on_tick``). Lambda callbacks
contribute the calls inside their bodies directly.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Any

from repro.lint.base import collect_aliases, dotted_name
from repro.lint.determinism import AMBIENT_CALLS, WALL_CLOCK_CALLS

#: Scheduling surfaces whose callback argument enters sim context, as
#: ``terminal name -> positional index of the callback argument``.
CALLBACK_REGISTRARS: dict[str, int] = {
    "schedule_at": 1,
    "schedule_after": 1,
    "every": 1,
    "push": 1,
    "create_timer": 1,
    "subscribe": 1,
    "Process": 2,
}

#: Method names that are sim-context hooks by convention.
HOOK_METHODS = frozenset({"on_start", "on_tick"})

#: Call-reference kinds (see module docstring for resolution rules).
PLAIN = "plain"
SELF = "self"
ATTR = "attr"
DOTTED = "dotted"


def entropy_code(name: str) -> str | None:
    """DET code of a canonical dotted call name, or None if clean."""
    if name in WALL_CLOCK_CALLS:
        return "DET001"
    if name.startswith("random.") or name.startswith("numpy.random."):
        return "DET002"
    if name in AMBIENT_CALLS or name.startswith("secrets."):
        return "DET004"
    return None


def _module_name(path: str) -> str:
    """Dotted module name from a source path, best-effort.

    ``src/repro/sim/kernel.py`` -> ``repro.sim.kernel``; paths outside
    a ``repro`` tree fall back to their stem, which keeps same-module
    resolution working for fixture files.
    """
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        i = len(parts) - 2
        while i >= 0 and parts[i] != "repro":
            i -= 1
        pkg = parts[i:-1]
        if stem == "__init__":
            return ".".join(pkg)
        return ".".join(pkg + [stem])
    return stem


class _SummaryVisitor(ast.NodeVisitor):
    """Single-pass extraction of one module's summary dict."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.aliases = collect_aliases(tree)
        self.summary: dict[str, Any] = {
            "path": path,
            "module": _module_name(path),
            "functions": {},
            "classes": {},
            "callbacks": [],
        }
        self._class_stack: list[str] = []
        self._func_stack: list[dict[str, Any]] = []
        self.visit(tree)

    # -- definitions ----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = ".".join(self._class_stack + [node.name])
        self.summary["classes"][qual] = {
            "bases": [b for b in (dotted_name(base, self.aliases) for base in node.bases) if b],
            "methods": [],
        }
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = ".".join(self._class_stack) if self._class_stack else None
        if self._func_stack:
            qual = self._func_stack[-1]["qualname"] + "." + node.name
        elif cls:
            qual = f"{cls}.{node.name}"
        else:
            qual = node.name
        info: dict[str, Any] = {
            "qualname": qual,
            "name": node.name,
            "cls": cls,
            "line": node.lineno,
            "calls": [],
            "entropy": [],
        }
        self.summary["functions"][qual] = info
        if cls:
            self.summary["classes"].setdefault(cls, {"bases": [], "methods": []})
            self.summary["classes"][cls]["methods"].append(node.name)
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- uses -----------------------------------------------------------
    def _call_ref(self, func: ast.expr) -> tuple[str, str] | None:
        """Classify a callable expression into a (kind, name) ref."""
        dotted = dotted_name(func, self.aliases)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if len(parts) == 1:
            return (PLAIN, dotted)
        if parts[0] == "self":
            if len(parts) == 2:
                return (SELF, parts[1])
            return (ATTR, parts[-1])
        root = func
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and root.id in self.aliases:
            # rooted in an import: the dotted path is canonical
            return (DOTTED, dotted)
        return (ATTR, parts[-1])

    def _register_callback(self, cb: ast.expr, line: int) -> None:
        if isinstance(cb, ast.Lambda):
            for sub in ast.walk(cb.body):
                if isinstance(sub, ast.Call):
                    ref = self._call_ref(sub.func)
                    if ref is not None:
                        self.summary["callbacks"].append(
                            {"kind": ref[0], "name": ref[1], "line": line,
                             "scope": self._scope()}
                        )
            return
        ref = self._call_ref(cb)
        if ref is not None:
            self.summary["callbacks"].append(
                {"kind": ref[0], "name": ref[1], "line": line, "scope": self._scope()}
            )

    def _scope(self) -> str | None:
        """Class context of the reference site, for self-resolution."""
        return ".".join(self._class_stack) if self._class_stack else None

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func, self.aliases)
        if self._func_stack and dotted is not None:
            info = self._func_stack[-1]
            code = entropy_code(dotted)
            if code is not None:
                info["entropy"].append(
                    {"code": code, "name": dotted, "line": node.lineno}
                )
            ref = self._call_ref(node.func)
            if ref is not None:
                info["calls"].append(
                    {"kind": ref[0], "name": ref[1], "line": node.lineno,
                     "scope": info["cls"]}
                )
        # callback registration (counts inside or outside functions)
        terminal = dotted.split(".")[-1] if dotted else None
        if terminal in CALLBACK_REGISTRARS:
            idx = CALLBACK_REGISTRARS[terminal]
            if len(node.args) > idx:
                self._register_callback(node.args[idx], node.lineno)
            for kw in node.keywords:
                if kw.arg == "callback":
                    self._register_callback(kw.value, node.lineno)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # os.environ reads are DET004 entropy even without a call
        if self._func_stack and dotted_name(node, self.aliases) == "os.environ":
            self._func_stack[-1]["entropy"].append(
                {"code": "DET004", "name": "os.environ", "line": node.lineno}
            )
        self.generic_visit(node)


def module_summary(path: str, tree: ast.Module) -> dict[str, Any]:
    """Extract the JSON-able summary of one parsed module."""
    return _SummaryVisitor(path, tree).summary


class ProjectIndex:
    """All module summaries, stitched into a resolvable call graph.

    Functions are addressed as ``(path, qualname)`` keys. Edges carry
    the call line in the *caller*, so a DET005 chain can point at the
    exact call that leaves sim-safe territory.
    """

    def __init__(self, summaries: list[dict[str, Any]]) -> None:
        self.summaries = summaries
        #: (path, qualname) -> function info dict
        self.functions: dict[tuple[str, str], dict[str, Any]] = {}
        #: dotted module name -> summary
        self._by_module: dict[str, dict[str, Any]] = {}
        #: method name -> [(path, class qualname)] across the project
        self._method_classes: dict[str, list[tuple[str, str]]] = {}
        #: plain function name -> [(path, qualname)] (module-level only)
        self._plain: dict[str, list[tuple[str, str]]] = {}
        for s in summaries:
            self._by_module[s["module"]] = s
            for qual, info in s["functions"].items():
                key = (s["path"], qual)
                self.functions[key] = info
                if info["cls"] is None and "." not in qual:
                    self._plain.setdefault(info["name"], []).append(key)
            for cls, cinfo in s["classes"].items():
                for m in cinfo["methods"]:
                    self._method_classes.setdefault(m, []).append((s["path"], cls))

    # -- resolution -----------------------------------------------------
    def _class_summary(self, path: str, cls: str) -> dict[str, Any] | None:
        for s in self.summaries:
            if s["path"] == path:
                return s["classes"].get(cls)
        return None

    def _resolve_in_class(self, path: str, cls: str, method: str) -> tuple[str, str] | None:
        """Resolve ``method`` in ``cls`` (same module), then its bases."""
        seen: set[tuple[str, str]] = set()
        queue = deque([(path, cls)])
        while queue:
            p, c = queue.popleft()
            if (p, c) in seen:
                continue
            seen.add((p, c))
            key = (p, f"{c}.{method}")
            if key in self.functions:
                return key
            cinfo = self._class_summary(p, c)
            if cinfo is None:
                continue
            for base in cinfo["bases"]:
                base_name = base.split(".")[-1]
                candidates = [
                    (bp, bc)
                    for bp, bc in self._all_classes()
                    if bc.split(".")[-1] == base_name
                ]
                if len(candidates) == 1:
                    queue.append(candidates[0])
        return None

    def _all_classes(self) -> list[tuple[str, str]]:
        return [
            (s["path"], c) for s in self.summaries for c in s["classes"]
        ]

    def resolve(self, path: str, ref: dict[str, Any]) -> tuple[str, str] | None:
        """Resolve one call/callback reference to a function key."""
        kind, name = ref["kind"], ref["name"]
        summary = next((s for s in self.summaries if s["path"] == path), None)
        if kind == PLAIN:
            if summary is not None and name in summary["functions"]:
                return (path, name)
            hits = self._plain.get(name, [])
            if len(hits) == 1:
                return hits[0]
            return None
        if kind == DOTTED:
            mod, _, fn = name.rpartition(".")
            target = self._by_module.get(mod)
            if target is not None and fn in target["functions"]:
                return (target["path"], fn)
            # ``from pkg.mod import func`` canonicalizes to pkg.mod.func
            return None
        if kind == SELF:
            scope = ref.get("scope")
            if scope:
                hit = self._resolve_in_class(path, scope, name)
                if hit is not None:
                    return hit
            return self._unique_method(name)
        if kind == ATTR:
            return self._unique_method(name)
        return None

    def _unique_method(self, name: str) -> tuple[str, str] | None:
        owners = self._method_classes.get(name, [])
        if len(owners) == 1:
            p, c = owners[0]
            key = (p, f"{c}.{name}")
            if key in self.functions:
                return key
        return None

    # -- graph ----------------------------------------------------------
    def roots(self) -> list[tuple[tuple[str, str], int]]:
        """Sim-context root functions as ``(key, registration line)``."""
        out: list[tuple[tuple[str, str], int]] = []
        seen: set[tuple[str, str]] = set()
        for s in self.summaries:
            for ref in s["callbacks"]:
                key = self.resolve(s["path"], ref)
                if key is not None and key not in seen:
                    seen.add(key)
                    out.append((key, ref["line"]))
        for key, info in self.functions.items():
            if info["name"] in HOOK_METHODS and info["cls"] and key not in seen:
                seen.add(key)
                out.append((key, info["line"]))
        return sorted(out, key=lambda item: (item[0][0], item[0][1]))

    def callees(self, key: tuple[str, str]) -> list[tuple[tuple[str, str], int]]:
        """Resolved call edges of one function as ``(callee, line)``."""
        info = self.functions.get(key)
        if info is None:
            return []
        out: list[tuple[tuple[str, str], int]] = []
        for ref in info["calls"]:
            callee = self.resolve(key[0], ref)
            if callee is not None and callee != key:
                out.append((callee, ref["line"]))
        return out
