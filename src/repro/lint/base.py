"""Shared checker machinery: the base visitor and name resolution.

Checkers are :class:`ast.NodeVisitor` subclasses. The engine hands each
one the module tree plus an import-alias map so ``pc()`` after
``from time import perf_counter as pc`` resolves to the canonical
dotted name ``time.perf_counter`` — matching is always done on
canonical names, never on surface spellings.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.lint.violations import Violation


def collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted paths for a module.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from datetime import datetime as dt`` yields
    ``{"dt": "datetime.datetime"}``. Wildcard imports are ignored —
    they are a lint smell of their own (F403) and unused in this tree.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def dotted_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Canonical dotted path of a ``Name``/``Attribute`` chain, or ``None``.

    ``np.random.default_rng`` with ``np -> numpy`` becomes
    ``"numpy.random.default_rng"``. Chains rooted in anything other
    than a plain name (calls, subscripts) resolve to ``None``.
    """
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id, cur.id)
    parts.append(root)
    return ".".join(reversed(parts))


def receiver_text(node: ast.expr) -> str:
    """Stable text form of an expression, for guard matching.

    ``ast.dump`` is position-independent, so two occurrences of
    ``self.telemetry`` compare equal wherever they appear.
    """
    return ast.dump(node)


class Checker(ast.NodeVisitor):
    """Base class: one rule code, one message, a violation list."""

    #: Rule identifier, e.g. ``"DET001"``.
    code: ClassVar[str] = ""
    #: Default finding message; :meth:`report` can override per site.
    message: ClassVar[str] = ""

    def __init__(self, path: str, tree: ast.Module, aliases: dict[str, str]) -> None:
        self.path = path
        self.tree = tree
        self.aliases = aliases
        self.violations: list[Violation] = []

    def run(self) -> list[Violation]:
        """Visit the module and return the collected violations."""
        self.visit(self.tree)
        return self.violations

    def report(self, node: ast.AST, message: str | None = None) -> None:
        """Record a violation anchored at ``node``."""
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message or self.message,
            )
        )
