"""Suppression comments: per-line ``ok(...)`` and per-file ``file-ok(...)``.

Syntax, mirroring the familiar ``noqa`` shape but scoped to lint codes::

    t0 = time.perf_counter()  # lint: ok(DET001): wall-clock benchmark
    x = {a, b}
    for v in x:               # lint: ok(DET003)
        ...

    # lint: file-ok(SIM004): telemetry package calls itself non-nullably

``ok(*)`` / ``file-ok(*)`` suppress every code. A reason after ``:`` is
optional but encouraged — it is what the next reader sees instead of a
red CI job.
"""

from __future__ import annotations

import re

_LINE_RE = re.compile(r"#\s*lint:\s*ok\(([^)]*)\)")
_FILE_RE = re.compile(r"#\s*lint:\s*file-ok\(([^)]*)\)")


def _parse_codes(raw: str) -> frozenset[str]:
    return frozenset(c.strip() for c in raw.split(",") if c.strip())


class SuppressionIndex:
    """Parsed suppression comments for one source file.

    Built once per file from the raw source text; checkers then ask
    :meth:`is_suppressed` per emitted violation. Parsing is textual
    (regex over physical lines) rather than AST-based so a suppression
    works on any line, including ones the parser folds away.
    """

    def __init__(self, source: str) -> None:
        self.line_codes: dict[int, frozenset[str]] = {}
        self.file_codes: frozenset[str] = frozenset()
        file_codes: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _LINE_RE.search(line)
            if m:
                self.line_codes[lineno] = _parse_codes(m.group(1))
            m = _FILE_RE.search(line)
            if m:
                file_codes.update(_parse_codes(m.group(1)))
        self.file_codes = frozenset(file_codes)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether ``code`` reported at ``line`` is silenced."""
        if code in self.file_codes or "*" in self.file_codes:
            return True
        codes = self.line_codes.get(line)
        return codes is not None and (code in codes or "*" in codes)
