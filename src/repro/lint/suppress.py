"""Suppression comments: per-line ``ok(...)`` and per-file ``file-ok(...)``.

Syntax, mirroring the familiar ``noqa`` shape but scoped to lint codes::

    t0 = time.perf_counter()  # lint: ok(DET001): wall-clock benchmark
    x = {a, b}
    for v in x:               # lint: ok(DET003): iteration order unused

    # lint: file-ok(SIM004): telemetry package calls itself non-nullably

``ok(*)`` / ``file-ok(*)`` suppress every code. The reason after the
second ``:`` is required by LNT001 — it is what the next reader sees
instead of a red CI job.

Every suppression is an :class:`Entry` that *tracks its own usage*:
:meth:`SuppressionIndex.is_suppressed` records which codes each entry
actually silenced, so after a full run the engine can ask
:meth:`SuppressionIndex.stale_entries` for the unused-noqa analogue
(LNT001) and ``--fix-suppressions`` can rewrite them away via
:func:`fix_suppressions`.
"""

from __future__ import annotations

import re

_LINE_RE = re.compile(r"#\s*lint:\s*ok\(([^)]*)\)(:\s*(\S.*))?")
_FILE_RE = re.compile(r"#\s*lint:\s*file-ok\(([^)]*)\)(:\s*(\S.*))?")


def _parse_codes(raw: str) -> frozenset[str]:
    return frozenset(c.strip() for c in raw.split(",") if c.strip())


class Entry:
    """One suppression comment, with its usage ledger."""

    __slots__ = ("lineno", "codes", "reason", "file_level", "span", "used")

    def __init__(
        self,
        lineno: int,
        codes: frozenset[str],
        reason: str | None,
        file_level: bool,
        span: tuple[int, int],
    ) -> None:
        #: Physical line the comment sits on.
        self.lineno = lineno
        self.codes = codes
        self.reason = reason
        self.file_level = file_level
        #: (start, end) column span of the comment within its line,
        #: so the fixer can strip exactly the suppression text.
        self.span = span
        #: Codes this entry actually silenced during the run.
        self.used: set[str] = set()

    def covers(self, code: str) -> bool:
        return code in self.codes or "*" in self.codes

    def unused_codes(self) -> frozenset[str]:
        """Listed codes that silenced nothing ('*' counts as one code)."""
        if "*" in self.codes:
            return frozenset() if self.used else frozenset("*")
        return self.codes - self.used


class SuppressionIndex:
    """Parsed suppression comments for one source file.

    Built once per file from the raw source text; checkers then ask
    :meth:`is_suppressed` per emitted violation. Parsing is textual
    (regex over physical lines) rather than AST-based so a suppression
    works on any line, including ones the parser folds away.
    """

    def __init__(self, source: str) -> None:
        self.entries: list[Entry] = []
        self._by_line: dict[int, list[Entry]] = {}
        self._file_entries: list[Entry] = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            for regex, file_level in ((_LINE_RE, False), (_FILE_RE, True)):
                m = regex.search(line)
                if m is None:
                    continue
                if not file_level and _FILE_RE.search(line):
                    # `ok(` also matches inside `file-ok(`; prefer file-ok
                    continue
                entry = Entry(
                    lineno,
                    _parse_codes(m.group(1)),
                    m.group(3).strip() if m.group(3) else None,
                    file_level,
                    m.span(),
                )
                self.entries.append(entry)
                if file_level:
                    self._file_entries.append(entry)
                else:
                    self._by_line.setdefault(lineno, []).append(entry)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether ``code`` reported at ``line`` is silenced.

        A hit is recorded on the matching entry's usage ledger, which
        is what keeps LNT001 honest about *stale* suppressions.
        """
        hit = False
        for entry in self._file_entries:
            if entry.covers(code):
                entry.used.add(code)
                hit = True
        for entry in self._by_line.get(line, ()):
            if entry.covers(code):
                entry.used.add(code)
                hit = True
        return hit

    def stale_entries(self, checked_codes: frozenset[str]) -> list[Entry]:
        """Entries that silenced nothing, among those we can judge.

        An entry is judged only when every code it lists was actually
        checked this run (``--select DET001`` must not declare a SIM002
        suppression stale). ``ok(*)`` entries are judged only on a full
        run, signalled by ``checked_codes`` containing ``"*"``.
        """
        out = []
        for entry in self.entries:
            if "*" in entry.codes:
                judgeable = "*" in checked_codes
            else:
                judgeable = entry.codes <= checked_codes
            if judgeable and entry.unused_codes():
                out.append(entry)
        return out


def fix_suppressions(source: str, entries: list[Entry]) -> str:
    """Rewrite ``source`` with the given stale entries removed/narrowed.

    A fully-stale entry has its comment stripped (the line is dropped
    when nothing else remains); a partially-stale one is narrowed to
    the codes that were actually used.
    """
    by_line: dict[int, list[Entry]] = {}
    for e in entries:
        by_line.setdefault(e.lineno, []).append(e)
    lines = source.splitlines(keepends=True)
    for lineno, line_entries in by_line.items():
        line = lines[lineno - 1]
        ending = line[len(line.rstrip("\r\n")):]
        body = line.rstrip("\r\n")
        # rewrite right-to-left so earlier spans stay valid
        for entry in sorted(line_entries, key=lambda e: e.span[0], reverse=True):
            start, end = entry.span
            keep = sorted(entry.codes & entry.used)
            if keep:
                kind = "file-ok" if entry.file_level else "ok"
                reason = f": {entry.reason}" if entry.reason else ""
                repl = f"# lint: {kind}({', '.join(keep)}){reason}"
            else:
                repl = ""
            body = (body[:start] + repl + body[end:]).rstrip()
        # a line that was only the suppression comment disappears
        lines[lineno - 1] = body + ending if body else ""
    return "".join(lines)
