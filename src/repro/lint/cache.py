"""Incremental lint cache: per-file results keyed by content hash.

A file's *raw* analysis — its pre-suppression violations plus its
call-graph :func:`~repro.lint.callgraph.module_summary` — depends only
on its bytes and on which checkers ran. Both are JSON, so the engine
persists them under ``.lint-cache/`` keyed by
``sha256(schema | checker codes | file bytes)`` and re-parses only the
files that changed since the last run. Everything contextual —
suppression filtering, the allowlist, the DET005 closure, LNT001 —
is recomputed live from the cached summaries, which is what keeps a
warm full-repo run well inside the CI runtime budget.

Bump :data:`SCHEMA` whenever a checker's behaviour changes; stale
entries are simply never read again (the directory is disposable —
``rm -rf .lint-cache`` is always safe).
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from repro.lint.violations import Violation

#: Cache format / checker-behaviour version; bump to invalidate everything.
SCHEMA = 1


class LintCache:
    """Content-addressed store of per-file lint results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: Observability counters for the CLI's cache summary line.
        self.hits = 0
        self.misses = 0

    def key(self, source: bytes, codes: Iterable[str]) -> str:
        h = hashlib.sha256()
        h.update(f"lint-cache:{SCHEMA}:".encode())
        h.update(",".join(sorted(codes)).encode())
        h.update(b":")
        h.update(source)
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> tuple[list[Violation], dict[str, Any]] | None:
        """Cached ``(raw violations, module summary)``, or None."""
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            violations = [Violation(**v) for v in payload["violations"]]
            summary = payload["summary"]
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return violations, summary

    def store(
        self, key: str, violations: list[Violation], summary: dict[str, Any]
    ) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "violations": [v.to_json() for v in violations],
            "summary": summary,
        }
        tmp = self._path(key).with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(payload))
            tmp.replace(self._path(key))
        except OSError:
            # a read-only tree degrades to cold runs, never to failure
            pass
