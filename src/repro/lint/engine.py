"""Run the analysis pipeline over files and trees.

Two tiers since the flow-aware upgrade:

* **per-file checkers** (``ALL_CHECKERS``) — AST/CFG rules that see one
  module at a time; their raw findings and the module's call-graph
  summary are cacheable by content hash;
* **whole-program passes** — DET005 (the determinism closure over the
  project call graph) and LNT001 (stale suppressions) — which need
  every file's summary/suppressions and therefore run live on each
  invocation, cheaply, from the (possibly cached) summaries.

Suppressions and the allowlist are always applied live: the allowlist
first (an allowlisted finding never marks a suppression as "used"),
then inline suppressions, whose usage ledger feeds LNT001.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence
from fnmatch import fnmatch
from pathlib import Path
from typing import Any

from repro.lint.base import Checker, collect_aliases
from repro.lint.cache import LintCache
from repro.lint.callgraph import ProjectIndex, module_summary
from repro.lint.closure import DeterminismClosure
from repro.lint.determinism import (
    AmbientEntropyChecker,
    OrderStableIterChecker,
    RandomnessChecker,
    WallClockChecker,
)
from repro.lint.lifecycle import EventLifecycleChecker
from repro.lint.protocol import ProtocolFSMChecker
from repro.lint.resources import ResourcePairingChecker
from repro.lint.simsafety import (
    FloatEqChecker,
    MutableDefaultChecker,
    ReentrantRunChecker,
    TelemetryGuardChecker,
)
from repro.lint.suppress import SuppressionIndex
from repro.lint.violations import Violation

#: Every per-file checker, in code order.
ALL_CHECKERS: tuple[type[Checker], ...] = (
    WallClockChecker,
    RandomnessChecker,
    OrderStableIterChecker,
    AmbientEntropyChecker,
    ProtocolFSMChecker,
    ResourcePairingChecker,
    ReentrantRunChecker,
    FloatEqChecker,
    MutableDefaultChecker,
    TelemetryGuardChecker,
    EventLifecycleChecker,
)

#: Whole-program codes that run over the stitched project index.
PROJECT_CODES = frozenset({DeterminismClosure.code})
#: Meta codes computed from the run itself.
META_CODES = frozenset({"LNT001"})
#: Every code ``--select`` accepts.
KNOWN_CODES = (
    frozenset(c.code for c in ALL_CHECKERS) | PROJECT_CODES | META_CODES
)

#: Path-glob -> codes exempted there. These are the *structural*
#: exemptions — places whose whole purpose is the thing the rule bans.
#: One-off sites use inline ``# lint: ok(CODE): reason`` instead.
DEFAULT_ALLOWLIST: tuple[tuple[str, tuple[str, ...]], ...] = (
    # the one sanctioned construction site for numpy generators
    ("*/repro/sim/rng.py", ("DET002",)),
    # telemetry holds the wall-clock fallback for untraced spans and
    # calls its own (non-nullable) surfaces internally
    ("*/repro/telemetry/*", ("DET001", "SIM004")),
    # CLI progress timing is operator-facing wall time by design
    ("*/repro/cli.py", ("DET001",)),
    # the kernel self-profiler measures the host, not the simulation,
    # and the obs layer mirrors telemetry's internal-surface pattern
    ("*/repro/obs/*", ("DET001", "SIM004")),
    # benchmarks measure real compute on real cores
    ("*benchmarks/*", ("DET001", "DET002")),
    # the kernel/event modules *implement* the slot-reuse lifecycle the
    # rule protects; their repush sites are the definition, not misuse
    ("*/repro/sim/kernel.py", ("SIM005",)),
    ("*/repro/sim/events.py", ("SIM005",)),
    # lint's own docstrings/regexes spell out suppression syntax, which
    # the textual parser cannot tell from real suppressions
    ("*/repro/lint/*", ("LNT001",)),
)


def allowed_codes(path: str, allowlist: Sequence[tuple[str, Sequence[str]]]) -> frozenset[str]:
    """Codes exempted for ``path`` under ``allowlist``."""
    posix = Path(path).as_posix()
    out: set[str] = set()
    for pattern, codes in allowlist:
        if fnmatch(posix, pattern):
            out.update(codes)
    return frozenset(out)


def _analyze(
    source: str, path: str, checkers: Sequence[type[Checker]]
) -> tuple[list[Violation], dict[str, Any]]:
    """Raw per-file results: pre-suppression violations + summary."""
    tree = ast.parse(source, filename=path)
    aliases = collect_aliases(tree)
    found: set[Violation] = set()
    for cls in checkers:
        found.update(cls(path, tree, aliases).run())
    return sorted(found), module_summary(path, tree)


class FileState:
    """One file's inputs to the whole-program passes."""

    __slots__ = ("path", "source", "raw", "summary", "suppressions", "exempt")

    def __init__(
        self,
        path: str,
        source: str,
        raw: list[Violation],
        summary: dict[str, Any],
        allowlist: Sequence[tuple[str, Sequence[str]]],
    ) -> None:
        self.path = path
        self.source = source
        self.raw = raw
        self.summary = summary
        self.suppressions = SuppressionIndex(source)
        self.exempt = allowed_codes(path, allowlist)


class LintRun:
    """A finished run: the findings plus everything needed to act on them."""

    def __init__(self, violations: list[Violation], files: list[FileState], cache: LintCache | None) -> None:
        self.violations = violations
        self.files = files
        self.cache = cache


def lint_source(
    source: str,
    path: str = "<string>",
    checkers: Sequence[type[Checker]] | None = None,
) -> list[Violation]:
    """Lint a source string with the per-file checkers only.

    Suppressions apply, the allowlist and whole-program passes do not —
    this is the unit-test surface for individual rules.
    """
    raw, _summary = _analyze(source, path, checkers or ALL_CHECKERS)
    suppressions = SuppressionIndex(source)
    return [v for v in raw if not suppressions.is_suppressed(v.code, v.line)]


def lint_file(
    path: str | Path,
    checkers: Sequence[type[Checker]] | None = None,
    allowlist: Sequence[tuple[str, Sequence[str]]] = DEFAULT_ALLOWLIST,
) -> list[Violation]:
    """Lint one file with the per-file checkers, honouring both filters."""
    p = Path(path)
    exempt = allowed_codes(p.as_posix(), allowlist)
    source = p.read_text()
    raw, _summary = _analyze(source, p.as_posix(), checkers or ALL_CHECKERS)
    suppressions = SuppressionIndex(source)
    return [
        v
        for v in raw
        if v.code not in exempt and not suppressions.is_suppressed(v.code, v.line)
    ]


def _collect_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def run_lint(
    paths: Sequence[str | Path],
    checkers: Sequence[type[Checker]] | None = None,
    allowlist: Sequence[tuple[str, Sequence[str]]] = DEFAULT_ALLOWLIST,
    select: Sequence[str] | None = None,
    cache_dir: str | Path | None = None,
) -> LintRun:
    """The full pipeline: per-file checkers, closure, stale suppressions.

    ``select`` limits the run to the named codes (whole-program passes
    included); ``checkers`` (the older API) limits the per-file tier
    and, when given without ``select``, turns the whole-program passes
    off — callers supplying explicit checker classes want exactly
    those. ``cache_dir`` enables the content-hash cache.
    """
    per_file = list(checkers) if checkers is not None else list(ALL_CHECKERS)
    if select is not None:
        wanted = frozenset(select)
        per_file = [c for c in per_file if c.code in wanted]
        run_closure = DeterminismClosure.code in wanted
        run_stale = "LNT001" in wanted
    else:
        run_closure = run_stale = checkers is None
    per_file_codes = frozenset(c.code for c in per_file)

    cache = LintCache(cache_dir) if cache_dir is not None else None
    states: list[FileState] = []
    for f in _collect_files(paths):
        posix = f.as_posix()
        source = f.read_text()
        raw: list[Violation] | None = None
        summary: dict[str, Any] | None = None
        key = None
        if cache is not None:
            key = cache.key(source.encode(), per_file_codes)
            hit = cache.load(key)
            if hit is not None:
                raw, summary = hit
        if raw is None or summary is None:
            raw, summary = _analyze(source, posix, per_file)
            if cache is not None and key is not None:
                cache.store(key, raw, summary)
        states.append(FileState(posix, source, raw, summary, allowlist))

    violations: list[Violation] = []
    by_path = {fs.path: fs for fs in states}
    for fs in states:
        violations.extend(
            v
            for v in fs.raw
            if v.code not in fs.exempt
            and not fs.suppressions.is_suppressed(v.code, v.line)
        )

    if run_closure:
        index = ProjectIndex([fs.summary for fs in states])

        def sanctioned(path: str, code: str, line: int) -> bool:
            fs = by_path.get(path)
            if fs is None:
                return False
            return code in fs.exempt or fs.suppressions.is_suppressed(code, line)

        for v in DeterminismClosure.run_project(index, sanctioned):
            fs = by_path.get(v.path)
            if fs is None:
                violations.append(v)
            elif v.code not in fs.exempt and not fs.suppressions.is_suppressed(
                v.code, v.line
            ):
                violations.append(v)

    if run_stale:
        checked = per_file_codes | ({DeterminismClosure.code} if run_closure else set())
        if per_file_codes == frozenset(c.code for c in ALL_CHECKERS) and run_closure:
            checked |= {"*"}
        for fs in states:
            if "LNT001" in fs.exempt:
                continue
            for entry in fs.suppressions.stale_entries(checked):
                unused = sorted(entry.unused_codes())
                violations.append(
                    Violation(
                        path=fs.path,
                        line=entry.lineno,
                        col=entry.span[0],
                        code="LNT001",
                        message=(
                            "stale suppression: "
                            + ", ".join(unused)
                            + " no longer suppress anything here; remove or "
                            "narrow (repro lint --fix-suppressions)"
                        ),
                    )
                )
            for entry in fs.suppressions.entries:
                if entry.reason is None:
                    violations.append(
                        Violation(
                            path=fs.path,
                            line=entry.lineno,
                            col=entry.span[0],
                            code="LNT001",
                            message=(
                                "suppression without a reason; write "
                                "`# lint: ok(CODE): why this is legitimate`"
                            ),
                        )
                    )

    return LintRun(sorted(set(violations)), states, cache)


def lint_paths(
    paths: Sequence[str | Path],
    checkers: Sequence[type[Checker]] | None = None,
    allowlist: Sequence[tuple[str, Sequence[str]]] = DEFAULT_ALLOWLIST,
    select: Sequence[str] | None = None,
    cache_dir: str | Path | None = None,
) -> list[Violation]:
    """Lint files and/or directory trees; output order is stable."""
    return run_lint(
        paths,
        checkers=checkers,
        allowlist=allowlist,
        select=select,
        cache_dir=cache_dir,
    ).violations
