"""Run the checkers over files and trees, applying allowlist + suppressions."""

from __future__ import annotations

import ast
from collections.abc import Sequence
from fnmatch import fnmatch
from pathlib import Path

from repro.lint.base import Checker, collect_aliases
from repro.lint.determinism import (
    AmbientEntropyChecker,
    OrderStableIterChecker,
    RandomnessChecker,
    WallClockChecker,
)
from repro.lint.simsafety import (
    FloatEqChecker,
    MutableDefaultChecker,
    ReentrantRunChecker,
    TelemetryGuardChecker,
)
from repro.lint.suppress import SuppressionIndex
from repro.lint.violations import Violation

#: Every checker, in code order.
ALL_CHECKERS: tuple[type[Checker], ...] = (
    WallClockChecker,
    RandomnessChecker,
    OrderStableIterChecker,
    AmbientEntropyChecker,
    ReentrantRunChecker,
    FloatEqChecker,
    MutableDefaultChecker,
    TelemetryGuardChecker,
)

#: Path-glob -> codes exempted there. These are the *structural*
#: exemptions — places whose whole purpose is the thing the rule bans.
#: One-off sites use inline ``# lint: ok(CODE): reason`` instead.
DEFAULT_ALLOWLIST: tuple[tuple[str, tuple[str, ...]], ...] = (
    # the one sanctioned construction site for numpy generators
    ("*/repro/sim/rng.py", ("DET002",)),
    # telemetry holds the wall-clock fallback for untraced spans and
    # calls its own (non-nullable) surfaces internally
    ("*/repro/telemetry/*", ("DET001", "SIM004")),
    # CLI progress timing is operator-facing wall time by design
    ("*/repro/cli.py", ("DET001",)),
    # the kernel self-profiler measures the host, not the simulation,
    # and the obs layer mirrors telemetry's internal-surface pattern
    ("*/repro/obs/*", ("DET001", "SIM004")),
    # benchmarks measure real compute on real cores
    ("*benchmarks/*", ("DET001", "DET002")),
)


def allowed_codes(path: str, allowlist: Sequence[tuple[str, Sequence[str]]]) -> frozenset[str]:
    """Codes exempted for ``path`` under ``allowlist``."""
    posix = Path(path).as_posix()
    out: set[str] = set()
    for pattern, codes in allowlist:
        if fnmatch(posix, pattern):
            out.update(codes)
    return frozenset(out)


def lint_source(
    source: str,
    path: str = "<string>",
    checkers: Sequence[type[Checker]] | None = None,
) -> list[Violation]:
    """Lint a source string; suppressions apply, allowlist does not."""
    tree = ast.parse(source, filename=path)
    aliases = collect_aliases(tree)
    suppressions = SuppressionIndex(source)
    found: set[Violation] = set()
    for cls in checkers or ALL_CHECKERS:
        for v in cls(path, tree, aliases).run():
            if not suppressions.is_suppressed(v.code, v.line):
                found.add(v)
    return sorted(found)


def lint_file(
    path: str | Path,
    checkers: Sequence[type[Checker]] | None = None,
    allowlist: Sequence[tuple[str, Sequence[str]]] = DEFAULT_ALLOWLIST,
) -> list[Violation]:
    """Lint one file, honouring suppressions and the allowlist."""
    p = Path(path)
    violations = lint_source(p.read_text(), path=p.as_posix(), checkers=checkers)
    exempt = allowed_codes(p.as_posix(), allowlist)
    return [v for v in violations if v.code not in exempt]


def lint_paths(
    paths: Sequence[str | Path],
    checkers: Sequence[type[Checker]] | None = None,
    allowlist: Sequence[tuple[str, Sequence[str]]] = DEFAULT_ALLOWLIST,
) -> list[Violation]:
    """Lint files and/or directory trees; output order is stable."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    out: list[Violation] = []
    for f in files:
        out.extend(lint_file(f, checkers=checkers, allowlist=allowlist))
    return sorted(out)
