"""RES001 — path-sensitive acquire/release pairing.

The repo's resource protocols are paired method calls: a worker slot is
``occupy``-ed and must be ``vacate``-d, a paused graph node must be
resumed, a lease granted must be released, admission reserved must be
released. A path that leaves the function while still holding the
resource — an early ``return``, an exception edge out of a ``try``, a
``break`` past the cleanup — strands capacity forever in a DES run,
because nothing else will ever give it back.

The checker walks the per-function CFG from every acquire site and
demands that each reachable path hits one of:

* the paired release on the same receiver (receiver matched by AST
  shape; when no same-receiver release exists in the function, any
  release of the right name counts — locals often alias the holder);
* an *ownership transfer*: storing into an attribute or container
  (``self._active.append(job)``, ``self.leases[name] = lease``) hands
  the obligation to whoever reads that structure later, which is the
  repo's sanctioned cross-callback pattern.

Conditional acquires are honoured: when the acquire result feeds a
test (``if not pool.request_admission(spec): return``), only the
branch on which the acquire *succeeded* is required to release.

A function containing acquires but **no** paired release at all is
skipped entirely — that is the split-callback pattern (``_start``
occupies, ``_finish`` vacates) and pairing is a cross-function
property there; RES001 only claims what the CFG can prove.
"""

from __future__ import annotations

import ast
from collections.abc import Callable

from repro.lint.base import Checker
from repro.lint.cfg import CFG, EXCEPT, RAISE, Block, build_cfg

#: acquire method name -> paired release method name.
RESOURCE_PROTOCOLS: dict[str, str] = {
    "occupy": "vacate",
    "pause_node": "resume_node",
    "begin_pause": "end_pause",
    "grant": "release",
    "request_admission": "release",
    "reserve": "release",
    "attach": "detach",
}

#: Container mutations that transfer ownership of the obligation.
TRANSFER_METHODS = frozenset({"append", "add", "insert", "setdefault", "put", "register"})

_RELEASE_NAMES = frozenset(RESOURCE_PROTOCOLS.values())


def _polarity(expr: ast.expr, match: Callable[[ast.AST], bool]) -> bool | None:
    """Branch on which ``match`` holds true: True/False edge, or None.

    Returns True when the matched node sits under an even number of
    ``not``s (the condition is truthy exactly when the match is), False
    under an odd number, None when no node matches.
    """
    found: list[bool] = []

    def rec(node: ast.AST, neg: bool) -> None:
        if match(node):
            found.append(neg)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            rec(node.operand, not neg)
            return
        for child in ast.iter_child_nodes(node):
            rec(child, neg)

    rec(expr, False)
    if not found:
        return None
    return not found[0]


def _is_transfer(block: Block) -> bool:
    """Whether this step stores into an attribute/container."""
    for part in block.parts:
        for sub in ast.walk(part):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                if any(isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets):
                    return True
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in TRANSFER_METHODS
                and sub.args
            ):
                return True
    return False


class _AcquireSite:
    __slots__ = ("block", "call", "name", "recv")

    def __init__(self, block: Block, call: ast.Call) -> None:
        self.block = block
        self.call = call
        assert isinstance(call.func, ast.Attribute)
        self.name = call.func.attr
        self.recv = ast.dump(call.func.value)


class ResourcePairingChecker(Checker):
    """RES001: an acquire must not escape the function unreleased."""

    code = "RES001"
    message = "resource acquire may escape without its paired release"

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _check(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cfg = build_cfg(func)
        acquires: list[_AcquireSite] = []
        releases: dict[str, list[tuple[int, str]]] = {}
        for block in cfg.stmt_blocks():
            for part in block.parts:
                for sub in ast.walk(part):
                    if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                        continue
                    name = sub.func.attr
                    if name in RESOURCE_PROTOCOLS:
                        acquires.append(_AcquireSite(block, sub))
                    if name in _RELEASE_NAMES:
                        releases.setdefault(name, []).append(
                            (block.bid, ast.dump(sub.func.value))
                        )
        for acq in acquires:
            rel_name = RESOURCE_PROTOCOLS[acq.name]
            candidates = releases.get(rel_name, [])
            if not candidates:
                continue  # split-callback protocol: out of scope
            same_recv = [bid for bid, recv in candidates if recv == acq.recv]
            satisfied = set(same_recv) if same_recv else {bid for bid, _ in candidates}
            escape = self._find_leak(cfg, acq, satisfied)
            if escape is not None:
                kind, line = escape
                self.report(
                    acq.call,
                    f"'{acq.name}' acquired here may escape via {kind} "
                    f"(line {line}) without '{rel_name}'; release on every "
                    "path or store the holder for a later callback",
                )

    def _find_leak(
        self, cfg: CFG, acq: _AcquireSite, satisfied: set[int]
    ) -> tuple[str, int] | None:
        """First escaping path from the acquire, or None if all release.

        Returns ``(escape kind, line of the escaping step)``.
        """
        held_name = self._captured_name(acq.block)
        start = self._initial_edges(acq)
        if not self._release_reachable(acq, start, satisfied):
            # no path from this acquire ever releases: the releases in
            # the function concern *other* holdings (release-old /
            # grant-new rotation) and the new holding is deliberately
            # long-lived. Flagging only release-asymmetry is what makes
            # the rule's positives believable.
            return None
        # (block, edge kind, predecessor, name still untested?)
        stack = [(succ, kind, acq.block, held_name) for succ, kind in start]
        seen: set[tuple[int, str | None]] = set()
        while stack:
            block, _kind, prev, name = stack.pop()
            if block.role == "exit":
                return ("return", prev.line)
            if block.role == "raise_exit":
                return ("an exception", prev.line)
            state = (block.bid, name)
            if state in seen:
                continue
            seen.add(state)
            if block.bid in satisfied or _is_transfer(block):
                continue
            succs = block.succs
            if name is not None and block.role == "test":
                pol = _polarity(
                    block.parts[0],
                    lambda n: isinstance(n, ast.Name) and n.id == name,
                )
                if pol is not None:
                    # follow only the branch where the acquire succeeded
                    want = "true" if pol else "false"
                    succs = [(s, k) for s, k in block.succs if k == want] or succs
                    name = None
            stack.extend((s, k, block, name) for s, k in succs)
        return None

    def _release_reachable(
        self, acq: _AcquireSite, start: list[tuple[Block, str]], satisfied: set[int]
    ) -> bool:
        seen: set[int] = set()
        stack = [b for b, _k in start]
        while stack:
            block = stack.pop()
            if block.bid in seen:
                continue
            seen.add(block.bid)
            if block.bid in satisfied:
                return True
            stack.extend(s for s, _k in block.succs)
        return False

    def _initial_edges(self, acq: _AcquireSite) -> list[tuple[Block, str]]:
        """Successor edges on which the acquire actually succeeded.

        Exception edges out of the acquire's own step are skipped (the
        acquire itself failed), and when the acquire sits inside a
        branch test only the succeeding polarity is followed.
        """
        edges = [(s, k) for s, k in acq.block.succs if k not in (EXCEPT, RAISE)]
        if acq.block.role == "test":
            pol = _polarity(acq.block.parts[0], lambda n: n is acq.call)
            if pol is not None:
                want = "true" if pol else "false"
                held = [(s, k) for s, k in edges if k == want]
                if held:
                    return held
        return edges

    def _captured_name(self, block: Block) -> str | None:
        """Name the acquire result is bound to, for later branch tests."""
        node = block.node
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            return node.targets[0].id
        return None
