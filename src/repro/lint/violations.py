"""The :class:`Violation` record every checker emits."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where it is, which rule, and why it matters.

    Ordering is lexicographic on ``(path, line, col, code)`` so a run's
    output is stable regardless of checker execution order — the lint
    pass itself honours the determinism rules it enforces.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col CODE message`` — the grep/editor-friendly form."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        """JSON-serializable mapping for ``repro lint --format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
