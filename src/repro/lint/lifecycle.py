"""SIM005 — static event-lifecycle misuse.

The PR 7 kernel made ``Event`` handles *slot-reused*: a periodic
:class:`Process` tick re-arms the same object via ``repush``/
``reschedule_after`` instead of allocating a new one. That buys the
2x cancel/re-arm churn win, and it creates a precise contract for
holders of a handle (spelled out in ``sim/events.py``):

* ``repush`` is legal **only on a FIRED event** — re-arming a PENDING
  or CANCELLED handle raises at runtime (``reschedule_after`` is the
  state-checked alternative);
* after handing a handle back to ``repush``/``reschedule_after``, its
  ``.time``/``.seq`` belong to the *next* firing — read them before
  re-arming, never after;
* a re-armed handle stored into a container outlives the callback that
  owned it, and whoever pops it later holds a handle whose identity has
  been recycled — the exact class of bug PR 7 fixed at runtime.

SIM005 flags all three statically, per function, over the CFG:

1. ``q.repush(h, ...)`` with no *fired evidence* for ``h`` in the
   function — evidence is ``h`` being assigned from ``pop``/
   ``pop_due``, or the function testing ``h.fired`` / comparing
   ``h.state``;
2. a read of ``h.time``/``h.seq`` on any path *after* ``h`` was passed
   to ``repush``/``reschedule_after`` (until ``h`` is reassigned);
3. the result of ``repush``/``reschedule_after`` stored into a
   container (``append``/``add``/``insert`` argument, or a
   subscript-assign RHS). Binding to a plain attribute
   (``self._tick = ...``) is the sanctioned ownership pattern and is
   not flagged.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker
from repro.lint.cfg import Block, build_cfg

REARM_METHODS = frozenset({"repush", "reschedule_after"})
#: Handle fields that are per-firing and stale after a re-arm.
STALE_FIELDS = frozenset({"time", "seq"})
#: Calls whose result is a handle known to have fired.
FIRED_SOURCES = frozenset({"pop", "pop_due"})
_CONTAINER_SINKS = frozenset({"append", "add", "insert", "put"})


def _terminal(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _handle_key(node: ast.AST) -> str | None:
    """Load/Store-insensitive identity of a handle expression.

    ``ast.dump`` would distinguish ``h = q.pop()`` (Store) from
    ``q.repush(h, ...)`` (Load); the handle is the same.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _handle_key(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _fired_evidence(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Keys of handle expressions the function knows to be FIRED."""
    evidence: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _terminal(node.value.func) in FIRED_SOURCES:
                for target in node.targets:
                    key = _handle_key(target)
                    if key is not None:
                        evidence.add(key)
        elif isinstance(node, ast.Attribute):
            if node.attr in ("fired", "state"):
                # .fired test or any read/comparison of .state
                key = _handle_key(node.value)
                if key is not None:
                    evidence.add(key)
    return evidence


class EventLifecycleChecker(Checker):
    """SIM005: slot-reused handles used outside their lifecycle."""

    code = "SIM005"
    message = "slot-reused event handle misused"

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _check(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        evidence = _fired_evidence(func)
        cfg = build_cfg(func)
        rearms: list[tuple[Block, ast.Call, str]] = []
        for block in cfg.stmt_blocks():
            for part in block.parts:
                for sub in ast.walk(part):
                    if not (isinstance(sub, ast.Call) and sub.args):
                        continue
                    name = _terminal(sub.func)
                    if name not in REARM_METHODS:
                        continue
                    handle = _handle_key(sub.args[0])
                    if handle is not None:
                        rearms.append((block, sub, handle))
                    if name == "repush" and (handle is None or handle not in evidence):
                        self.report(
                            sub,
                            "repush of a handle with no evidence it has "
                            "FIRED (raises on pending/cancelled handles); "
                            "check .fired first or use reschedule_after",
                        )
        for block, call, handle in rearms:
            self._check_stale_reads(block, call, handle)
        self._check_retention(func)

    # -- rule 2: .time/.seq after re-arm --------------------------------
    def _check_stale_reads(self, start: Block, call: ast.Call, handle: str) -> None:
        seen: set[int] = set()
        stack = [succ for succ, _k in start.succs]
        while stack:
            block = stack.pop()
            if block.bid in seen or block.role in ("exit", "raise_exit"):
                continue
            seen.add(block.bid)
            stale = self._stale_read(block, handle)
            if stale is not None:
                self.report(
                    stale,
                    f"reads .{stale.attr} of a handle already handed back to "
                    f"{_terminal(call.func)}() at line {call.lineno}; the "
                    "slot is re-armed — cache time/seq before re-arming",
                )
                continue
            if self._reassigns(block, handle):
                continue
            stack.extend(succ for succ, _k in block.succs)

    def _stale_read(self, block: Block, handle: str) -> ast.Attribute | None:
        for part in block.parts:
            for sub in ast.walk(part):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr in STALE_FIELDS
                    and _handle_key(sub.value) == handle
                ):
                    return sub
        return None

    def _reassigns(self, block: Block, handle: str) -> bool:
        for part in block.parts:
            for sub in ast.walk(part):
                if isinstance(sub, ast.Assign) and any(
                    _handle_key(t) == handle for t in sub.targets
                ):
                    return True
        return False

    # -- rule 3: re-armed handle retained in a container ----------------
    def _check_retention(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and _terminal(node.func) in _CONTAINER_SINKS:
                for arg in node.args:
                    if self._is_rearm_call(arg):
                        self.report(
                            arg,
                            "slot-reused handle stored into a container; it "
                            "will be silently re-armed under the holder — "
                            "bind it to an attribute the owner controls",
                        )
            elif isinstance(node, ast.Assign) and self._is_rearm_call(node.value):
                if any(isinstance(t, ast.Subscript) for t in node.targets):
                    self.report(
                        node.value,
                        "slot-reused handle stored into a container; it "
                        "will be silently re-armed under the holder — "
                        "bind it to an attribute the owner controls",
                    )

    @staticmethod
    def _is_rearm_call(node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and _terminal(node.func) in REARM_METHODS
