"""DET checkers: wall-clock, randomness, iteration order, ambient entropy.

These four rules are the load-bearing half of the pass: each guards one
way real-world nondeterminism can leak into a simulation that must be a
pure function of its seed.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, dotted_name

#: Canonical names whose *call* reads the host's wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockChecker(Checker):
    """DET001 — sim code must read time from ``sim.clock``, not the host.

    One ``time.time()`` in a hot path timestamps events with wall time
    and the same seed stops producing the same artifact. Wall-clock
    reads are legitimate only for benchmarking real compute or labelling
    exported artifacts — those sites carry an explicit suppression or
    live in allowlisted files (CLI, telemetry export).
    """

    code = "DET001"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func, self.aliases)
        if name in WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock read {name}() in sim code; use the simulator clock "
                "(sim.now()) or suppress with '# lint: ok(DET001): <reason>'",
            )
        self.generic_visit(node)


class RandomnessChecker(Checker):
    """DET002 — all randomness flows through ``repro.sim.rng``.

    The stdlib ``random`` module is banned outright (global, hash-seed
    adjacent, easy to leave unseeded). Direct ``numpy.random``
    construction is banned too — even seeded ``default_rng`` calls must
    route through :func:`repro.sim.rng.seeded_rng`/``split_rng`` so
    stream derivation stays auditable in one place.
    """

    code = "DET002"

    def visit_Import(self, node: ast.Import) -> None:
        for a in node.names:
            if a.name == "random" or a.name.startswith("random."):
                self.report(
                    node,
                    "stdlib 'random' is banned in sim code; "
                    "use repro.sim.rng.seeded_rng",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "random":
            self.report(
                node,
                "stdlib 'random' is banned in sim code; use repro.sim.rng.seeded_rng",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func, self.aliases)
        if name is not None:
            if name.startswith("random."):
                self.report(
                    node,
                    f"{name}() draws from the global stdlib RNG; "
                    "use repro.sim.rng.seeded_rng",
                )
            elif name.startswith("numpy.random."):
                self.report(
                    node,
                    f"direct {name}() call; construct generators via "
                    "repro.sim.rng.seeded_rng / split_rng",
                )
        self.generic_visit(node)


def _is_set_like(node: ast.expr, aliases: dict[str, str]) -> bool:
    """Whether an expression evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func, aliases)
        return name in {"set", "frozenset"}
    return False


class OrderStableIterChecker(Checker):
    """DET003 — iteration order reaching sim state must be stable.

    Iterating a set (or keying a dict by ``id(obj)``) makes loop order
    depend on ``PYTHONHASHSEED`` or allocation addresses; if that order
    reaches the event queue or serialized output, byte-identity dies.
    Wrap the iterable in ``sorted(...)`` or iterate a list/dict instead.
    This is a heuristic: direct set expressions in ``for``/comprehension
    position, names locally bound to set expressions, and ``id(...)``
    used as a subscript or dict-literal key.
    """

    code = "DET003"

    def __init__(self, path: str, tree: ast.Module, aliases: dict[str, str]) -> None:
        super().__init__(path, tree, aliases)
        self._set_names: set[str] = set()

    def _scan_assignments(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and _is_set_like(child.value, self.aliases):
                for tgt in child.targets:
                    if isinstance(tgt, ast.Name):
                        self._set_names.add(tgt.id)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                if _is_set_like(child.value, self.aliases) and isinstance(
                    child.target, ast.Name
                ):
                    self._set_names.add(child.target.id)

    def run(self) -> list:
        self._scan_assignments(self.tree)
        return super().run()

    def _check_iter(self, node: ast.expr) -> None:
        if _is_set_like(node, self.aliases):
            self.report(
                node,
                "iteration over a set has hash-seed-dependent order; "
                "wrap in sorted(...) or use a list/dict",
            )
        elif isinstance(node, ast.Name) and node.id in self._set_names:
            self.report(
                node,
                f"iteration over set-typed name {node.id!r} has "
                "hash-seed-dependent order; wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators: list[ast.comprehension]) -> None:
        for gen in generators:
            self._check_iter(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def _is_id_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and dotted_name(node.func, self.aliases) == "id"
        )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_id_call(node.slice):
            self.report(
                node,
                "dict keyed by id(...) orders by allocation address; "
                "key by a stable name or index instead",
            )
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and self._is_id_call(key):
                self.report(
                    key,
                    "dict keyed by id(...) orders by allocation address; "
                    "key by a stable name or index instead",
                )
        self.generic_visit(node)


#: Canonical names that import ambient host state into a run.
AMBIENT_CALLS = frozenset(
    {
        "os.urandom",
        "os.getenv",
        "os.environ.get",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


class AmbientEntropyChecker(Checker):
    """DET004 — no ambient host entropy or environment reads in sim code.

    ``os.environ`` makes a run depend on the invoking shell;
    ``os.urandom``/``uuid4``/``secrets`` are unseedable by design.
    Configuration enters through constructor parameters, randomness
    through ``sim.rng``.
    """

    code = "DET004"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func, self.aliases)
        if name is not None and (name in AMBIENT_CALLS or name.startswith("secrets.")):
            self.report(
                node,
                f"{name}() imports ambient host state; pass configuration/seed "
                "explicitly instead",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if dotted_name(node, self.aliases) == "os.environ":
            self.report(
                node,
                "os.environ read in sim code; pass configuration explicitly",
            )
        self.generic_visit(node)
