"""Per-function control-flow graphs for the flow-aware checkers.

One :class:`Block` per executed *step*: a simple statement, a branch
test, an exception handler entry, a loop header. Compound statements
(``if``/``while``/``for``/``try``/``with``/``match``) are decomposed
into their headers and bodies, so path-sensitive analyses (RES001's
acquire/release pairing, PRO001's FSM exits) can walk real execution
orders — including the ones only an exception takes.

Exception edges are deliberately selective, because "any call can
raise" would drown every analysis in paths no reviewer believes:

* an explicit ``raise`` always edges to the innermost enclosing
  handler set, or to :attr:`CFG.raise_exit` when uncaught;
* a statement that *contains a call or assert* gets an exception edge
  **only while inside a ``try``** — the author has declared the region
  failure-prone, so the analyses honour every way out of it;
* ``finally`` bodies are inlined once per continuation (normal,
  exceptional, return/break/continue), so a release inside ``finally``
  is correctly seen on *both* the clean and the exploding path.

Every block remembers the AST fragments that actually execute at that
step (``parts``): for an ``if`` header that is the test expression
only, never the body — so "does this step call ``vacate``" is asked of
exactly the code that runs there.
"""

from __future__ import annotations

import ast
from collections.abc import Sequence

#: Edge kinds. "next" is ordinary fall-through; "true"/"false" leave a
#: branch test; "except" enters a handler (or the exceptional finally);
#: "raise" escapes the function with an exception; "return" reaches the
#: normal exit via an explicit return; "loop" is a back edge.
NEXT = "next"
TRUE = "true"
FALSE = "false"
EXCEPT = "except"
RAISE = "raise"
RETURN = "return"
LOOP = "loop"
BREAK = "break"
CONTINUE = "continue"


class Block:
    """One executable step plus its outgoing edges."""

    __slots__ = ("bid", "node", "parts", "succs", "role")

    def __init__(
        self,
        bid: int,
        node: ast.AST | None,
        parts: Sequence[ast.AST],
        role: str,
    ) -> None:
        self.bid = bid
        #: The owning AST node (a statement, or None for entry/exit).
        self.node = node
        #: The fragments that execute *at this step* (e.g. only the
        #: test of an ``if``). Analyses scan these, never ``node``.
        self.parts = list(parts)
        #: Outgoing edges as ``(block, kind)`` pairs.
        self.succs: list[tuple[Block, str]] = []
        #: "entry", "exit", "raise_exit", "stmt", "test", "handler".
        self.role = role

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        src = type(self.node).__name__ if self.node is not None else "-"
        return f"Block({self.bid}, {self.role}, {src}, line={self.line})"


def stmt_can_raise(parts: Sequence[ast.AST]) -> bool:
    """Whether a step may raise: explicit raise/assert, or any call."""
    for part in parts:
        for sub in ast.walk(part):
            if isinstance(sub, (ast.Call, ast.Raise, ast.Assert)):
                return True
    return False


#: Frontier: dangling ``(block, kind)`` edges awaiting their successor.
Frontier = list[tuple[Block, str]]


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self._block(None, (), "entry")
        self.exit = self._block(None, (), "exit")
        self.raise_exit = self._block(None, (), "raise_exit")
        builder = _Builder(self)
        frontier = builder.seq(func.body, [(self.entry, NEXT)])
        _connect(frontier, self.exit, RETURN)

    def _block(self, node: ast.AST | None, parts: Sequence[ast.AST], role: str) -> Block:
        b = Block(len(self.blocks), node, parts, role)
        self.blocks.append(b)
        return b

    def stmt_blocks(self) -> list[Block]:
        """Every executable block, in construction (source-ish) order."""
        return [b for b in self.blocks if b.role in ("stmt", "test", "handler")]


def _connect(frontier: Frontier, target: Block, kind: str | None = None) -> None:
    for block, edge_kind in frontier:
        block.succs.append((target, kind if kind is not None else edge_kind))


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: Innermost exception targets: a list of handler-entry blocks,
        #: or None markers meaning "route through this try's finally
        #: exceptionally". Empty stack => raising escapes the function.
        self._exc_stack: list[_TryContext] = []
        #: (break_frontier, continue_target) per enclosing loop.
        self._loop_stack: list[tuple[Frontier, Block]] = []
        #: Enclosing finally bodies that a return/break/continue must
        #: run through before leaving (innermost last).
        self._finally_stack: list[list[ast.stmt]] = []

    # -- plumbing -------------------------------------------------------
    def _new(self, node: ast.AST, parts: Sequence[ast.AST], role: str = "stmt") -> Block:
        return self.cfg._block(node, parts, role)

    def _exception_edges(self, block: Block, explicit: bool) -> None:
        """Wire ``block``'s exceptional exits.

        ``explicit`` is True for ``raise`` statements (always wired);
        implicit call-raises are wired only inside a ``try``.
        """
        if self._exc_stack:
            self._exc_stack[-1].raisers.append(block)
        elif explicit:
            self._escape_exceptionally([(block, RAISE)])

    def _escape_exceptionally(self, frontier: Frontier) -> None:
        """Route ``frontier`` out of the function via RAISE, running
        any enclosing finally bodies on the way."""
        for body in reversed(self._finally_stack):
            frontier = self.seq(body, frontier)
            if not frontier:
                return
        _connect(frontier, self.cfg.raise_exit, RAISE)

    def _escape(self, frontier: Frontier, target: Block, kind: str, depth: int) -> None:
        """Route ``frontier`` to ``target`` through the finally bodies
        above ``depth`` on the stack (for return/break/continue)."""
        for body in reversed(self._finally_stack[depth:]):
            frontier = self.seq(body, frontier)
            if not frontier:
                return
        _connect(frontier, target, kind)

    # -- statements -----------------------------------------------------
    def seq(self, stmts: Sequence[ast.stmt], frontier: Frontier) -> Frontier:
        for stmt in stmts:
            if not frontier:
                break
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            block = self._new(stmt, [stmt.value] if stmt.value else [])
            _connect(frontier, block, None)
            if stmt_can_raise(block.parts):
                self._exception_edges(block, explicit=False)
            self._escape([(block, RETURN)], self.cfg.exit, RETURN, 0)
            return []
        if isinstance(stmt, ast.Raise):
            block = self._new(stmt, [p for p in (stmt.exc, stmt.cause) if p])
            _connect(frontier, block, None)
            self._exception_edges(block, explicit=True)
            return []
        if isinstance(stmt, ast.Break):
            block = self._new(stmt, [])
            _connect(frontier, block, None)
            if self._loop_stack:
                break_frontier, _ = self._loop_stack[-1]
                break_frontier.append((block, BREAK))
            return []
        if isinstance(stmt, ast.Continue):
            block = self._new(stmt, [])
            _connect(frontier, block, None)
            if self._loop_stack:
                _, continue_target = self._loop_stack[-1]
                block.succs.append((continue_target, CONTINUE))
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # nested definitions execute as a single binding step; their
            # bodies get their own CFGs when the analyses recurse
            block = self._new(stmt, [])
            _connect(frontier, block, None)
            return [(block, NEXT)]
        # simple statement: one block, the whole statement executes here
        block = self._new(stmt, [stmt])
        _connect(frontier, block, None)
        if stmt_can_raise(block.parts):
            self._exception_edges(block, explicit=isinstance(stmt, ast.Assert))
        return [(block, NEXT)]

    # -- compounds ------------------------------------------------------
    def _if(self, stmt: ast.If, frontier: Frontier) -> Frontier:
        test = self._new(stmt, [stmt.test], role="test")
        _connect(frontier, test, None)
        if stmt_can_raise(test.parts):
            self._exception_edges(test, explicit=False)
        body_out = self.seq(stmt.body, [(test, TRUE)])
        else_out = self.seq(stmt.orelse, [(test, FALSE)]) if stmt.orelse else [(test, FALSE)]
        return body_out + else_out

    def _while(self, stmt: ast.While, frontier: Frontier) -> Frontier:
        test = self._new(stmt, [stmt.test], role="test")
        _connect(frontier, test, None)
        if stmt_can_raise(test.parts):
            self._exception_edges(test, explicit=False)
        break_frontier: Frontier = []
        self._loop_stack.append((break_frontier, test))
        body_out = self.seq(stmt.body, [(test, TRUE)])
        self._loop_stack.pop()
        _connect(body_out, test, LOOP)
        exits: Frontier = [] if _always_true(stmt.test) else [(test, FALSE)]
        if stmt.orelse:
            exits = self.seq(stmt.orelse, exits)
        return exits + break_frontier

    def _for(self, stmt: ast.For | ast.AsyncFor, frontier: Frontier) -> Frontier:
        head = self._new(stmt, [stmt.iter, stmt.target], role="test")
        _connect(frontier, head, None)
        if stmt_can_raise(head.parts):
            self._exception_edges(head, explicit=False)
        break_frontier: Frontier = []
        self._loop_stack.append((break_frontier, head))
        body_out = self.seq(stmt.body, [(head, TRUE)])
        self._loop_stack.pop()
        _connect(body_out, head, LOOP)
        exits: Frontier = [(head, FALSE)]
        if stmt.orelse:
            exits = self.seq(stmt.orelse, exits)
        return exits + break_frontier

    def _with(self, stmt: ast.With | ast.AsyncWith, frontier: Frontier) -> Frontier:
        head = self._new(
            stmt,
            [item.context_expr for item in stmt.items]
            + [item.optional_vars for item in stmt.items if item.optional_vars],
        )
        _connect(frontier, head, None)
        if stmt_can_raise(head.parts):
            self._exception_edges(head, explicit=False)
        return self.seq(stmt.body, [(head, NEXT)])

    def _match(self, stmt: ast.Match, frontier: Frontier) -> Frontier:
        head = self._new(stmt, [stmt.subject], role="test")
        _connect(frontier, head, None)
        out: Frontier = []
        for case in stmt.cases:
            out.extend(self.seq(case.body, [(head, TRUE)]))
        # no case may match: fall through
        out.append((head, FALSE))
        return out

    def _try(self, stmt: ast.Try, frontier: Frontier) -> Frontier:
        ctx = _TryContext()
        self._exc_stack.append(ctx)
        if stmt.finalbody:
            self._finally_stack.append(stmt.finalbody)
        body_out = self.seq(stmt.body, frontier)
        self._exc_stack.pop()

        # normal completion: else-block, then the (normal) finally
        if stmt.orelse:
            body_out = self.seq(stmt.orelse, body_out)
        handler_outs: Frontier = []
        exceptional: Frontier = []
        if stmt.handlers:
            # handler bodies run with this try's finally still pending
            # (a return inside a handler flows through it), but their
            # own raises belong to the *enclosing* handler set
            for handler in stmt.handlers:
                entry = self._new(handler, [handler.type] if handler.type else [], role="handler")
                for raiser in ctx.raisers:
                    raiser.succs.append((entry, EXCEPT))
                h_out = self.seq(handler.body, [(entry, NEXT)])
                handler_outs.extend(h_out)
        else:
            # no handlers: every raiser continues exceptionally (via the
            # finally, if any, then out of this try)
            exceptional = [(r, RAISE) for r in ctx.raisers]

        if stmt.finalbody:
            self._finally_stack.pop()
            fin_normal = self.seq(stmt.finalbody, body_out + handler_outs)
            if exceptional:
                fin_exc = self.seq(stmt.finalbody, exceptional)
                if self._exc_stack:
                    for block, _ in fin_exc:
                        self._exc_stack[-1].raisers.append(block)
                else:
                    self._escape_exceptionally(fin_exc)
            return fin_normal
        if exceptional:
            if self._exc_stack:
                for block, _ in exceptional:
                    self._exc_stack[-1].raisers.append(block)
            else:
                self._escape_exceptionally(exceptional)
        return body_out + handler_outs


class _TryContext:
    """Raising blocks collected while building one try body."""

    __slots__ = ("raisers",)

    def __init__(self) -> None:
        self.raisers: list[Block] = []


def _always_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function definition."""
    return CFG(func)
