"""Static analysis for simulation determinism and sim-safety.

Every headline artifact of this reproduction (fig9/fig13 tables, the
fleet and recovery ``cmp`` smoke jobs, replayable fault plans) rests on
one invariant: *a mission is a pure function of its seed*. Code under
``src/repro`` must therefore never read wall-clock time, draw unseeded
randomness, or let order-unstable iteration reach simulator state or
serialized output. ``repro.lint`` turns that convention into a
machine-checked gate: a flow-aware analysis suite (stdlib :mod:`ast`,
no third-party dependencies) built from per-file checkers, a
per-function CFG (:mod:`repro.lint.cfg`), and a project-wide call
graph (:mod:`repro.lint.callgraph`), run via ``python -m repro lint``.

Checker codes
-------------

========  ==========================================================
DET001    wall-clock reads (``time.time``/``perf_counter``/…)
DET002    global ``random`` module or direct ``numpy.random`` use
DET003    iteration over sets / object-identity dict keys
DET004    ambient entropy (``os.environ``/``os.urandom``/``uuid4``)
DET005    sim callback *transitively* reaches entropy (call chain)
RES001    acquire may escape a CFG path without its paired release
PRO001    2PC phase method exits without advance/abort/finalize
SIM001    reentrant ``Simulator.run`` from an event callback
SIM002    float ``==``/``!=`` on sim-time or energy quantities
SIM003    mutable default arguments
SIM004    unguarded calls through a nullable telemetry handle
SIM005    slot-reused event handle misuse (repush/stale time/seq)
LNT001    stale or reasonless ``# lint: ok`` suppression
========  ==========================================================

Suppressions: append ``# lint: ok(CODE): reason`` to the offending
line, or declare ``# lint: file-ok(CODE): reason`` anywhere in the
file. LNT001 requires the reason and flags suppressions that no longer
fire; ``repro lint --fix-suppressions`` rewrites those away. See
``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.lint.baseline import filter_new, load_baseline, write_baseline
from repro.lint.cache import LintCache
from repro.lint.callgraph import ProjectIndex, module_summary
from repro.lint.cfg import CFG, build_cfg
from repro.lint.closure import DeterminismClosure
from repro.lint.determinism import (
    AmbientEntropyChecker,
    OrderStableIterChecker,
    RandomnessChecker,
    WallClockChecker,
)
from repro.lint.engine import (
    ALL_CHECKERS,
    DEFAULT_ALLOWLIST,
    KNOWN_CODES,
    LintRun,
    lint_file,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.lifecycle import EventLifecycleChecker
from repro.lint.protocol import ProtocolFSMChecker
from repro.lint.resources import ResourcePairingChecker
from repro.lint.simsafety import (
    FloatEqChecker,
    MutableDefaultChecker,
    ReentrantRunChecker,
    TelemetryGuardChecker,
)
from repro.lint.suppress import SuppressionIndex, fix_suppressions
from repro.lint.violations import Violation

__all__ = [
    "ALL_CHECKERS",
    "CFG",
    "DEFAULT_ALLOWLIST",
    "KNOWN_CODES",
    "AmbientEntropyChecker",
    "DeterminismClosure",
    "EventLifecycleChecker",
    "FloatEqChecker",
    "LintCache",
    "LintRun",
    "MutableDefaultChecker",
    "OrderStableIterChecker",
    "ProjectIndex",
    "ProtocolFSMChecker",
    "RandomnessChecker",
    "ReentrantRunChecker",
    "ResourcePairingChecker",
    "SuppressionIndex",
    "TelemetryGuardChecker",
    "Violation",
    "WallClockChecker",
    "build_cfg",
    "filter_new",
    "fix_suppressions",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_summary",
    "run_lint",
    "write_baseline",
]
