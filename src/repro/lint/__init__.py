"""Static analysis for simulation determinism and sim-safety.

Every headline artifact of this reproduction (fig9/fig13 tables, the
fleet and recovery ``cmp`` smoke jobs, replayable fault plans) rests on
one invariant: *a mission is a pure function of its seed*. Code under
``src/repro`` must therefore never read wall-clock time, draw unseeded
randomness, or let order-unstable iteration reach simulator state or
serialized output. ``repro.lint`` turns that convention into a
machine-checked gate: an AST pass (stdlib :mod:`ast`, no third-party
dependencies) with eight checkers, run via ``python -m repro lint``.

Checker codes
-------------

========  ==========================================================
DET001    wall-clock reads (``time.time``/``perf_counter``/…)
DET002    global ``random`` module or direct ``numpy.random`` use
DET003    iteration over sets / object-identity dict keys
DET004    ambient entropy (``os.environ``/``os.urandom``/``uuid4``)
SIM001    reentrant ``Simulator.run`` from an event callback
SIM002    float ``==``/``!=`` on sim-time or energy quantities
SIM003    mutable default arguments
SIM004    unguarded calls through a nullable telemetry handle
========  ==========================================================

Suppressions: append ``# lint: ok(CODE)`` (optionally
``# lint: ok(CODE): reason``) to the offending line, or declare
``# lint: file-ok(CODE): reason`` anywhere in the file. See
``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.lint.determinism import (
    AmbientEntropyChecker,
    OrderStableIterChecker,
    RandomnessChecker,
    WallClockChecker,
)
from repro.lint.engine import (
    ALL_CHECKERS,
    DEFAULT_ALLOWLIST,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.simsafety import (
    FloatEqChecker,
    MutableDefaultChecker,
    ReentrantRunChecker,
    TelemetryGuardChecker,
)
from repro.lint.suppress import SuppressionIndex
from repro.lint.violations import Violation

__all__ = [
    "ALL_CHECKERS",
    "DEFAULT_ALLOWLIST",
    "AmbientEntropyChecker",
    "FloatEqChecker",
    "MutableDefaultChecker",
    "OrderStableIterChecker",
    "RandomnessChecker",
    "ReentrantRunChecker",
    "SuppressionIndex",
    "TelemetryGuardChecker",
    "Violation",
    "WallClockChecker",
    "lint_file",
    "lint_paths",
    "lint_source",
]
