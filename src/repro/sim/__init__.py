"""Deterministic discrete-event simulation kernel.

Everything in the reproduction that advances virtual time — middleware
message delivery, node compute delays, network transit, vehicle motion —
is scheduled on a single :class:`~repro.sim.kernel.Simulator` calendar
queue (see ``docs/kernel.md``), so entire missions replay bit-identically
from a seed.
"""

from repro.sim.audit import OrderingAuditor, TiebreakAmbiguity
from repro.sim.clock import SimClock
from repro.sim.events import CalendarEventQueue, Event, EventQueue, HeapEventQueue
from repro.sim.kernel import Process, Simulator
from repro.sim.rng import seeded_rng, split_rng

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "CalendarEventQueue",
    "HeapEventQueue",
    "OrderingAuditor",
    "TiebreakAmbiguity",
    "Simulator",
    "Process",
    "seeded_rng",
    "split_rng",
]
