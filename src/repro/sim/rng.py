"""Seeded random-number helpers.

All stochastic components (particle filters, network jitter, sensor
noise) draw from generators created here so a mission is a pure
function of its seed.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded with ``seed``.

    ``None`` produces OS entropy — only use in exploratory scripts,
    never in tests or benchmarks.
    """
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used to give each parallel worker (e.g. a scanMatch thread) its own
    stream so results do not depend on thread interleaving.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
