"""The discrete-event simulator.

The :class:`Simulator` owns the clock and the event queue. Components
schedule callbacks at absolute or relative virtual times; :meth:`run`
drains the queue in time order. A :class:`Process` is a light wrapper
for periodic activities (sensor polling, control loops, monitors).

The drain loop is the hottest code in the repository — every simulated
message, tick and timer passes through it — so :meth:`Simulator.run`
carries an inlined fast path for the common configuration (no
telemetry, no profiler, no auditor): the queue head is resolved once
per event (dead entries are skipped exactly once, not re-pruned by
``peek``/``pop`` pairs), same-time events are fired as a batch under a
single clock advance, and periodic :class:`Process` ticks re-arm by
recycling their fired event through
:meth:`~repro.sim.events._EventQueueBase.repush` instead of paying an
allocation plus cancel churn per period. See ``docs/kernel.md`` for
the scheduler data structure and the event lifecycle contract.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any, ClassVar

from repro.sim.audit import OrderingAuditor
from repro.sim.clock import SimClock
from repro.sim.events import FIRED, Event, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profiler import KernelProfiler
    from repro.telemetry import Telemetry
    from repro.telemetry.metrics import Counter as MetricCounter


class _FiredRef:
    """Scalar snapshot of a fired event, taken before its callback runs.

    The ordering auditor compares consecutive fired events, but a
    periodic callback may recycle its own event object (slot reuse),
    mutating ``time``/``seq`` in place — so the kernel hands the
    auditor an immutable snapshot instead of the live handle.
    """

    __slots__ = ("time", "seq", "label", "callback", "parent")

    def __init__(self, ev: Event) -> None:
        self.time = ev.time
        self.seq = ev.seq
        self.label = ev.label
        self.callback = ev.callback
        self.parent = ev.parent


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    ``telemetry`` is normally attached via
    :func:`repro.telemetry.instrument.instrument_simulator`; when set,
    every fired event is recorded as a span on the ``"kernel"`` track
    and counted in ``sim_events_total``. When ``None`` (the default)
    the only cost is one attribute test per event.

    ``audit_ordering`` attaches an :class:`~repro.sim.audit.OrderingAuditor`
    that watches same-time event ties for ambiguous resolution order;
    see :mod:`repro.sim.audit`. Off by default — the audited hot path
    pays one extra comparison per event.
    """

    #: When set (via :meth:`install_default_audit`), every subsequently
    #: constructed simulator self-registers an auditor here. Lets test
    #: harnesses audit experiment runners that build their simulators
    #: internally.
    _default_audit_registry: ClassVar[list[OrderingAuditor] | None] = None

    #: Same idea for the kernel self-profiler: when set (via
    #: :meth:`install_default_profiling`), every new simulator attaches
    #: a fresh :class:`~repro.obs.profiler.KernelProfiler` and registers
    #: it here — how ``--kernel-profile-out`` profiles experiment
    #: runners that construct simulators internally.
    _default_profiler_registry: ClassVar["list[KernelProfiler] | None"] = None

    #: Current virtual time in seconds. Bound directly to the clock's
    #: ``now`` in ``__init__`` so the single hottest query in the
    #: repository costs one call frame instead of two.
    now: Callable[[], float]

    def __init__(self, start_time: float = 0.0, audit_ordering: bool = False) -> None:
        self.clock = SimClock(start_time)
        self.now = self.clock.now
        self.queue = EventQueue()
        self._stopped = False
        self._processed = 0
        self.telemetry: Telemetry | None = None
        self._tel_events: MetricCounter | None = None  # cached sim_events_total counter
        #: Opt-in wall-clock self-profiler (repro.obs.KernelProfiler
        #: installs itself here via ``attach``); ``None`` costs one
        #: attribute test per event.
        self.profiler: KernelProfiler | None = None
        self._firing_seq = -1  # seq of the event whose callback is running
        self._in_event = False  # reentrancy guard for run()/step()
        self.auditor: OrderingAuditor | None = None
        self._last_fired: _FiredRef | None = None
        if audit_ordering:
            self.enable_ordering_audit()
        registry = Simulator._default_audit_registry
        if registry is not None and self.auditor is None:
            registry.append(self.enable_ordering_audit())
        prof_registry = Simulator._default_profiler_registry
        if prof_registry is not None:
            from repro.obs.profiler import KernelProfiler as _KernelProfiler

            prof_registry.append(_KernelProfiler().attach(self))

    # ------------------------------------------------------------------
    # Ordering audit
    # ------------------------------------------------------------------
    def enable_ordering_audit(self) -> OrderingAuditor:
        """Attach (or return the existing) ordering auditor.

        Observation starts with the next popped event; enabling
        mid-run audits the remainder of the mission.
        """
        if self.auditor is None:
            self.auditor = OrderingAuditor()
        return self.auditor

    @classmethod
    def install_default_audit(cls) -> list[OrderingAuditor]:
        """Audit every simulator constructed from now on.

        Returns the live registry the auditors accumulate into. Pair
        with :meth:`clear_default_audit` (use try/finally in tests).
        """
        registry: list[OrderingAuditor] = []
        cls._default_audit_registry = registry
        return registry

    @classmethod
    def clear_default_audit(cls) -> None:
        """Stop auditing newly constructed simulators."""
        cls._default_audit_registry = None

    # ------------------------------------------------------------------
    # Kernel self-profiling
    # ------------------------------------------------------------------
    @classmethod
    def install_default_profiling(cls) -> "list[KernelProfiler]":
        """Profile every simulator constructed from now on.

        Returns the live registry the profilers accumulate into
        (aggregate with :func:`repro.obs.profiler.aggregate_profiles`).
        Pair with :meth:`clear_default_profiling` (try/finally).
        """
        registry: "list[KernelProfiler]" = []
        cls._default_profiler_registry = registry
        return registry

    @classmethod
    def clear_default_profiling(cls) -> None:
        """Stop profiling newly constructed simulators."""
        cls._default_profiler_registry = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, t: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``t``.

        ``t`` earlier than now raises ``ValueError``.
        """
        if t < self.clock._now:
            raise ValueError(f"cannot schedule in the past: {t} < {self.now()}")
        return self.queue.push(t, callback, label, parent=self._firing_seq)

    def schedule_after(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.queue.push(
            self.clock._now + delay, callback, label, parent=self._firing_seq
        )

    def reschedule_after(self, event: Event, delay: float) -> Event:
        """Re-arm a fired event ``delay`` seconds from now (slot reuse).

        The periodic-tick fast path: when ``event`` has fired on this
        simulator, its slot is recycled with a fresh sequence number —
        no allocation, no cancel churn — producing the identical
        ``(time, seq)`` order a fresh :meth:`schedule_after` would.
        Any other lifecycle state falls back to a plain push of the
        event's callback, so callers never have to special-case
        ``fire_now``/``set_period`` interleavings.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        queue = self.queue
        if event.state == FIRED and event.owner is queue:
            return queue.repush(
                event, self.clock._now + delay, parent=self._firing_seq
            )
        return queue.push(
            self.clock._now + delay, event.callback, event.label, parent=self._firing_seq
        )

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        Safe in every lifecycle state — cancelling an event that has
        already fired (or was already cancelled) is a no-op. Passing
        an event that belongs to a *different* simulator's queue
        raises ``ValueError``: sequence numbers are namespaced per
        queue, so honouring a foreign handle could corrupt accounting
        or (before the lifecycle states existed) kill an unrelated
        event.
        """
        self.queue.cancel(event)

    def every(
        self,
        period: float,
        callback: Callable[[], Any],
        label: str = "",
        start_delay: float | None = None,
        on_error: str = "raise",
    ) -> Process:
        """Run ``callback`` every ``period`` seconds until stopped.

        Returns a :class:`Process` handle whose :meth:`Process.stop`
        cancels future firings. ``on_error`` selects the crash policy
        for a raising callback (see :class:`Process`).
        """
        return Process(
            self, period, callback, label=label, start_delay=start_delay, on_error=on_error
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event. Returns ``False`` if queue empty.

        Raises ``RuntimeError`` when called from inside a firing event
        callback — re-entering the drain loop would fire events out of
        order (statically checked as SIM001 by ``repro.lint``).
        """
        if self._in_event:
            raise RuntimeError(
                "Simulator.step/run called reentrantly from an event callback; "
                "schedule follow-up events instead"
            )
        if not self.queue:
            return False
        ev = self.queue.pop()
        self.clock.advance_to(ev.time)
        self._fire(ev)
        return True

    def _fire(self, ev: Event) -> None:
        """Fire one popped event with full instrumentation.

        Snapshot scalars (time/seq/parent) are taken *before* the
        callback runs: a periodic callback may recycle ``ev`` through
        :meth:`reschedule_after`, mutating the handle in place.
        """
        auditor = self.auditor
        if auditor is not None:
            last = self._last_fired
            if (
                last is not None
                and ev.time == last.time  # lint: ok(SIM002): exact tie detection is the point
                and ev.parent != last.seq
            ):
                auditor.observe(last, ev)
            self._last_fired = _FiredRef(ev)
        seq = ev.seq
        self._firing_seq = seq
        self._in_event = True
        # The firing body is duplicated across the two arms so the
        # profiler-off path pays exactly one attribute test per event
        # (budgeted by benchmarks/test_obs_overhead.py).
        prof = self.profiler
        if prof is None:
            try:
                tel = self.telemetry
                if tel is None:
                    ev.callback()
                else:
                    span = tel.tracer.begin(ev.label or "event", track="kernel")
                    try:
                        ev.callback()
                    finally:
                        tel.tracer.end(span)
                    if self._tel_events is not None:
                        self._tel_events.inc()
            finally:
                self._in_event = False
                self._firing_seq = -1
        else:
            label = ev.label
            t_event = ev.time
            parent = ev.parent
            t_fire = prof.clock()
            try:
                tel = self.telemetry
                if tel is None:
                    ev.callback()
                else:
                    span = tel.tracer.begin(label or "event", track="kernel")
                    try:
                        ev.callback()
                    finally:
                        tel.tracer.end(span)
                    if self._tel_events is not None:
                        self._tel_events.inc()
            finally:
                self._in_event = False
                self._firing_seq = -1
                prof.record(label, t_event, seq, parent, prof.clock() - t_fire)
        self._processed += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain events until the queue empties, ``until`` is reached,
        or ``max_events`` have fired. Returns the final virtual time.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last event fired earlier, so integrals
        over [0, until] are well-defined. ``max_events`` is counted off
        :attr:`events_processed` — the same tally :meth:`step`
        maintains — so the two can never drift apart.

        Raises ``RuntimeError`` when called from inside a firing event
        callback (see :meth:`step`).
        """
        if self._in_event:
            raise RuntimeError(
                "Simulator.step/run called reentrantly from an event callback; "
                "schedule follow-up events instead"
            )
        self._stopped = False
        limit = None if max_events is None else self._processed + max_events
        clock = self.clock
        pop_due = self.queue.pop_due
        while not self._stopped:
            if limit is not None and self._processed >= limit:
                break
            ev = pop_due(until)
            if ev is None:
                break
            t = ev.time
            if (
                self.telemetry is None
                and self.profiler is None
                and self.auditor is None
            ):
                # Inlined fast path: ``pop_due`` resolves the head once
                # (no ``peek``/``pop`` double scan), the clock only
                # advances on a time change (same-time events fire as
                # one batch, and ``t > _now`` makes a plain store
                # safe), and the instrumentation branches of
                # :meth:`_fire` are skipped wholesale.
                if t > clock._now:
                    clock._now = t
                self._firing_seq = ev.seq
                self._in_event = True
                try:
                    ev.callback()
                finally:
                    self._in_event = False
                    self._firing_seq = -1
                self._processed += 1
            else:
                clock.advance_to(t)
                self._fire(ev)
        if until is not None and until > clock._now:
            clock.advance_to(until)
        return clock._now

    def stop(self) -> None:
        """Request :meth:`run` to return after the current event."""
        self._stopped = True

    @property
    def events_processed(self) -> int:
        """Total events fired since construction."""
        return self._processed

    @property
    def queue_depth(self) -> int:
        """Live (non-cancelled) events currently scheduled."""
        return len(self.queue)


#: Valid :class:`Process` error policies.
ON_ERROR_POLICIES = ("raise", "stop", "keep")


class Process:
    """A periodic activity driven by the simulator.

    The first firing happens ``start_delay`` seconds after creation
    (default: one full period). The callback may call :meth:`stop` to
    end the process from within.

    ``on_error`` decides what a raising callback does to the run:

    * ``"raise"`` (default) — the process stops cleanly, then the
      exception propagates out of :meth:`Simulator.run`;
    * ``"stop"`` — the error is recorded in :attr:`errors` and the
      process stops; the simulation keeps running;
    * ``"keep"`` — the error is recorded and the process keeps its
      periodic schedule (degrade, never crash).

    Contained errors are mirrored as ``process_error`` telemetry
    events when the simulator carries a telemetry object.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        label: str = "",
        start_delay: float | None = None,
        on_error: str = "raise",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
            )
        self.sim = sim
        self.period = float(period)
        self.callback = callback
        self.label = label or getattr(callback, "__name__", "process")
        self.on_error = on_error
        #: Contained callback errors as ``(virtual_time, exception)``.
        self.errors: list[tuple[float, Exception]] = []
        self._event: Event | None = None
        self._running = True
        self.fire_count = 0
        #: Virtual time the period is anchored to: the last firing, or
        #: (before the first one) the creation time.
        self._anchor = sim.now()
        delay = self.period if start_delay is None else start_delay
        self._event = sim.schedule_after(delay, self._fire, label=self.label)

    def _fire(self) -> None:
        if not self._running:
            return
        # Detach the handle of the firing event so stop()/set_period()
        # from inside the callback see no pending firing; keep it for
        # the slot-reuse re-arm below (fire_now arrives with the
        # pending event already cancelled, so ``spent`` is None there).
        spent = self._event
        self._event = None
        self.fire_count += 1
        self._anchor = self.sim.clock._now
        try:
            self.callback()
        except Exception as exc:
            self._contain(exc)
            if self.on_error == "raise":
                raise
        if self._running and self._event is None:
            if spent is not None:
                self._event = self.sim.reschedule_after(spent, self.period)
            else:
                self._event = self.sim.schedule_after(
                    self.period, self._fire, label=self.label
                )

    def _contain(self, exc: Exception) -> None:
        """Record a callback error and apply the on-error policy."""
        self.errors.append((self.sim.now(), exc))
        if self.on_error != "keep":
            # leave a consistent carcass: no pending event, not running —
            # previously a raising callback left ``running`` True with no
            # firing ever scheduled again (half-torn-down)
            self._running = False
            if self._event is not None:
                self.sim.cancel(self._event)
                self._event = None
        tel = self.sim.telemetry
        if tel is not None:
            tel.emit(
                "process_error",
                t=self.sim.now(),
                track="kernel",
                process=self.label,
                error=repr(exc),
                policy=self.on_error,
            )

    def set_period(self, period: float) -> None:
        """Change the firing period, rescheduling the *pending* firing.

        The next firing moves to ``max(now, last_firing + period)`` —
        shrinking the period of an adaptive monitor loop takes effect
        immediately instead of one stale interval later, and growing it
        defers the already-scheduled firing. Subsequent firings follow
        the new period as usual.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = float(period)
        if self._running and self._event is not None:
            self.sim.cancel(self._event)
            target = max(self.sim.now(), self._anchor + self.period)
            self._event = self.sim.schedule_at(target, self._fire, label=self.label)

    def fire_now(self) -> None:
        """Fire the callback immediately and restart the period from now.

        Used by the telemetry flusher to capture final gauge values at
        export time; counts as a normal firing (``fire_count`` grows,
        the next periodic firing lands one full period later).
        """
        if not self._running:
            raise RuntimeError(f"process {self.label!r} is stopped")
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None
        self._fire()

    def stop(self) -> None:
        """Stop the process; pending firing is cancelled."""
        self._running = False
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    @property
    def running(self) -> bool:
        """Whether the process will fire again."""
        return self._running
