"""The discrete-event simulator.

The :class:`Simulator` owns the clock and the event queue. Components
schedule callbacks at absolute or relative virtual times; :meth:`run`
drains the queue in time order. A :class:`Process` is a light wrapper
for periodic activities (sensor polling, control loops, monitors).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue


class Simulator:
    """Single-threaded deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = SimClock(start_time)
        self.queue = EventQueue()
        self._stopped = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now()

    def schedule_at(self, t: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``t``.

        ``t`` earlier than now raises ``ValueError``.
        """
        if t < self.now():
            raise ValueError(f"cannot schedule in the past: {t} < {self.now()}")
        return self.queue.push(t, callback, label)

    def schedule_after(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.queue.push(self.now() + delay, callback, label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(event)

    def every(
        self,
        period: float,
        callback: Callable[[], Any],
        label: str = "",
        start_delay: float | None = None,
    ) -> "Process":
        """Run ``callback`` every ``period`` seconds until stopped.

        Returns a :class:`Process` handle whose :meth:`Process.stop`
        cancels future firings.
        """
        return Process(self, period, callback, label=label, start_delay=start_delay)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event. Returns ``False`` if queue empty."""
        if not self.queue:
            return False
        ev = self.queue.pop()
        self.clock.advance_to(ev.time)
        ev.callback()
        self._processed += 1
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain events until the queue empties, ``until`` is reached,
        or ``max_events`` have fired. Returns the final virtual time.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last event fired earlier, so integrals
        over [0, until] are well-defined.
        """
        self._stopped = False
        fired = 0
        while self.queue and not self._stopped:
            t_next = self.queue.peek_time()
            if until is not None and t_next is not None and t_next > until:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if until is not None and until > self.now():
            self.clock.advance_to(until)
        return self.now()

    def stop(self) -> None:
        """Request :meth:`run` to return after the current event."""
        self._stopped = True

    @property
    def events_processed(self) -> int:
        """Total events fired since construction."""
        return self._processed


class Process:
    """A periodic activity driven by the simulator.

    The first firing happens ``start_delay`` seconds after creation
    (default: one full period). The callback may call :meth:`stop` to
    end the process from within.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        label: str = "",
        start_delay: float | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = float(period)
        self.callback = callback
        self.label = label or getattr(callback, "__name__", "process")
        self._event: Event | None = None
        self._running = True
        self.fire_count = 0
        delay = self.period if start_delay is None else start_delay
        self._event = sim.schedule_after(delay, self._fire, label=self.label)

    def _fire(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self.callback()
        if self._running:
            self._event = self.sim.schedule_after(self.period, self._fire, label=self.label)

    def set_period(self, period: float) -> None:
        """Change the firing period; takes effect from the next firing."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = float(period)

    def stop(self) -> None:
        """Stop the process; pending firing is cancelled."""
        self._running = False
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    @property
    def running(self) -> bool:
        """Whether the process will fire again."""
        return self._running
