"""Runtime ordering auditor: detect ambiguous same-time tiebreaks.

The event queue breaks ties on identical fire times by scheduling
sequence number, so any single run is totally ordered. The hazard the
static pass cannot see is *where that sequence order comes from*: if
two causally unrelated events land on the same timestamp, their
relative order is whatever insertion order happened to be — correct
today, silently different after an innocent refactor that reorders two
``schedule_after`` calls.

The auditor watches consecutive pops at identical timestamps and
classifies each *concurrent* tie (the later event was already queued
before the earlier one fired, so neither scheduled the other):

* **ordered** — the pair of labels always resolves the same way within
  the run; the tie order is a stable function of construction order
  (e.g. two periodic processes created in a fixed sequence).
* **ambiguous** — the same label pair resolves A-before-B at one
  timestamp and B-before-A at another (*inversion*), or the two events
  share a label but different callbacks (*same-label*), so no stable
  rule orders them at all.

Zero ambiguities on the reference artifacts (fig9's traced mission,
the fig13 deployment cells) is asserted by
``benchmarks/test_determinism_audit.py`` and gated in CI.

Enable per-simulator (``Simulator(audit_ordering=True)`` or
:meth:`~repro.sim.kernel.Simulator.enable_ordering_audit`), or
fleet-wide for code that constructs simulators internally::

    auditors = Simulator.install_default_audit()
    run_fig9(telemetry=Telemetry())     # builds its own Simulator
    Simulator.clear_default_audit()
    assert all(not a.ambiguities for a in auditors)
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, Protocol


class FiredEventView(Protocol):
    """What the auditor needs from a fired event.

    Structural on purpose: under slot reuse a periodic callback may
    mutate its own :class:`~repro.sim.events.Event` in place, so the
    kernel hands the auditor immutable scalar snapshots rather than
    live handles. Any object carrying these attributes qualifies.
    """

    time: float
    seq: int
    label: str
    callback: Callable[[], Any]


@dataclass(frozen=True)
class TiebreakAmbiguity:
    """One ambiguous same-time tiebreak observed during a run."""

    #: Virtual time at which the tie fired.
    time: float
    #: ``"inversion"`` (pair order flipped within the run) or
    #: ``"same-label"`` (identical labels, distinct callbacks).
    kind: str
    #: Label of the event popped first at this timestamp.
    first: str
    #: Label of the event popped second.
    second: str

    def render(self) -> str:
        return (
            f"t={self.time:.6f} {self.kind}: {self.first!r} before "
            f"{self.second!r}"
        )


class OrderingAuditor:
    """Accumulates tiebreak statistics for one simulator run.

    The kernel calls :meth:`observe` for every pair of consecutively
    popped events with identical fire times where the second was *not*
    scheduled by the first (concurrent insertion). Cost when enabled is
    one dict lookup per tie; disabled runs pay nothing.
    """

    def __init__(self) -> None:
        #: Concurrent same-time pairs seen, keyed ``(first, second)``.
        self.pair_counts: Counter[tuple[str, str]] = Counter()
        #: Total concurrent ties observed.
        self.tie_count = 0
        #: Ambiguities found, in observation order.
        self.ambiguities: list[TiebreakAmbiguity] = []
        self._canonical: dict[frozenset[str], tuple[str, str]] = {}

    def observe(self, first: FiredEventView, second: FiredEventView) -> None:
        """Record one concurrent same-time pop pair."""
        self.tie_count += 1
        a, b = first.label, second.label
        self.pair_counts[(a, b)] += 1
        if a == b:
            if first.callback is not second.callback:
                self.ambiguities.append(
                    TiebreakAmbiguity(time=second.time, kind="same-label", first=a, second=b)
                )
            return
        key = frozenset((a, b))
        seen = self._canonical.get(key)
        if seen is None:
            self._canonical[key] = (a, b)
        elif seen != (a, b):
            self.ambiguities.append(
                TiebreakAmbiguity(time=second.time, kind="inversion", first=a, second=b)
            )

    @property
    def ambiguous(self) -> bool:
        """Whether any ambiguous tiebreak was observed."""
        return bool(self.ambiguities)

    def report(self) -> str:
        """Human-readable audit summary."""
        lines = [
            "== ordering audit ==",
            f"concurrent same-time ties: {self.tie_count} "
            f"({len(self._canonical)} distinct label pairs)",
        ]
        for (a, b), n in sorted(self.pair_counts.items()):
            lines.append(f"  {n:6d}  {a!r} -> {b!r}")
        if self.ambiguities:
            lines.append(f"AMBIGUOUS tiebreaks: {len(self.ambiguities)}")
            lines.extend(f"  {amb.render()}" for amb in self.ambiguities)
        else:
            lines.append("no ambiguous tiebreaks")
        return "\n".join(lines)
