"""Event primitives for the discrete-event kernel.

An :class:`Event` is an immutable record of *when* a callback fires.
Ties on time are broken by a monotonically increasing sequence number so
the execution order of same-timestamp events is the order in which they
were scheduled — this is what makes whole-mission replays deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Virtual time (seconds) at which the event fires.
    seq:
        Scheduling sequence number; the tie-breaker for equal times.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    parent:
        ``seq`` of the event whose callback scheduled this one, or
        ``-1`` when scheduled outside any callback (setup code). Used
        by the ordering auditor to tell causal same-time ties (child
        scheduled by the event it ties with) from concurrent ones.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    parent: int = field(compare=False, default=-1)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    Supports lazy cancellation: :meth:`cancel` marks an event dead and
    :meth:`pop` silently skips dead events.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._dead: set[int] = set()
        self._counter = itertools.count()
        self._live = 0
        #: Lifetime churn counters (read by the kernel self-profiler):
        #: total pushes, lazy cancellations, and dead events pruned off
        #: the heap. Plain ints — they cost one increment each and
        #: never affect event order.
        self.pushes = 0
        self.cancels = 0
        self.pruned = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        parent: int = -1,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if math.isnan(time):
            raise ValueError("event time is NaN")
        ev = Event(
            time=float(time),
            seq=next(self._counter),
            callback=callback,
            label=label,
            parent=parent,
        )
        heapq.heappush(self._heap, ev)
        self._live += 1
        self.pushes += 1
        return ev

    def cancel(self, event: Event) -> None:
        """Mark ``event`` as cancelled; it will be skipped on pop."""
        if event.seq not in self._dead:
            self._dead.add(event.seq)
            self._live -= 1
            self.cancels += 1

    def peek_time(self) -> float | None:
        """Return the fire time of the next live event, or ``None``."""
        self._prune()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._prune()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        ev = heapq.heappop(self._heap)
        self._live -= 1
        return ev

    def _prune(self) -> None:
        while self._heap and self._heap[0].seq in self._dead:
            dead = heapq.heappop(self._heap)
            self._dead.discard(dead.seq)
            self.pruned += 1
