"""Event primitives for the discrete-event kernel.

An :class:`Event` is a record of *when* a callback fires. Ties on time
are broken by a monotonically increasing sequence number so the
execution order of same-timestamp events is the order in which they
were scheduled — this is what makes whole-mission replays
deterministic.

Every event carries an explicit lifecycle state::

    PENDING --pop()--> FIRED --repush()--> PENDING ...
        \\--cancel()--> CANCELLED

The state is what makes cancellation *safe*: cancelling an event that
already fired (or was already cancelled) is a no-op instead of
corrupting the queue's live count, and only fired events — whose queue
entry was physically consumed by ``pop`` — may be recycled through
:meth:`EventQueue.repush` (the slot-reuse path periodic processes use
to re-arm without allocating a fresh event every tick).

Two queue implementations share the contract and the exact
``(time, seq)`` total order:

* :class:`CalendarEventQueue` (the default ``EventQueue``) — a
  calendar/bucket wheel for the near future with a binary-heap
  fallback for sparse far-future events.  Near-term scheduling is an
  O(1) list append; pops walk a sorted bucket by index instead of
  sifting a heap.
* :class:`HeapEventQueue` — a plain binary heap of ``(time, seq,
  event)`` tuples.  Kept as the reference implementation: property
  tests assert both backends pop in an identical order on randomized
  workloads, and it remains selectable for workloads whose event times
  are too sparse for the wheel to help.

Neither backend ever compares :class:`Event` objects: entries are bare
``(time, seq, event)`` tuples, so all ordering work happens in C-level
tuple comparisons — the ``@dataclass(order=True)`` per-comparison
Python calls of the original heap were the kernel's single largest
overhead (see ``BENCH_kernel_throughput.json``).
"""

from __future__ import annotations

import itertools
import math
from bisect import insort
from collections.abc import Callable
from heapq import heappop, heappush
from typing import Any

#: Event lifecycle states (``Event.state``).
PENDING = 0
FIRED = 1
CANCELLED = 2

_STATE_NAMES = {PENDING: "pending", FIRED: "fired", CANCELLED: "cancelled"}

#: A queue entry: the ``(time, seq)`` sort key plus the event itself.
#: ``seq`` is unique, so tuple comparison never reaches the event.
Entry = tuple[float, int, "Event"]


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Virtual time (seconds) at which the event fires.
    seq:
        Scheduling sequence number; the tie-breaker for equal times.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    parent:
        ``seq`` of the event whose callback scheduled this one, or
        ``-1`` when scheduled outside any callback (setup code). Used
        by the ordering auditor to tell causal same-time ties (child
        scheduled by the event it ties with) from concurrent ones.

    Events are packed with ``__slots__`` and treated as immutable by
    convention; only the owning queue mutates them (``pop`` marks them
    fired, ``repush`` re-arms a fired event with a fresh time and
    sequence number). Holders that cache ``time``/``seq`` must read
    them before handing the event back to ``repush``.
    """

    __slots__ = ("time", "seq", "callback", "label", "parent", "state", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
        parent: int = -1,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.parent = parent
        #: Lifecycle state: PENDING, FIRED or CANCELLED.
        self.state = PENDING
        #: The queue this event was scheduled on (cancellation guard).
        self.owner: _EventQueueBase | None = None

    @property
    def pending(self) -> bool:
        """Whether the event is still scheduled to fire."""
        return self.state == PENDING

    @property
    def fired(self) -> bool:
        """Whether the event's callback has been popped for firing."""
        return self.state == FIRED

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before firing."""
        return self.state == CANCELLED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Event(t={self.time:.6f}, seq={self.seq}, "
            f"label={self.label!r}, {_STATE_NAMES[self.state]})"
        )


class _EventQueueBase:
    """Shared contract: counters, accounting, cancellation, reuse.

    Subclasses implement the storage (:meth:`_insert`, :meth:`_head`,
    :meth:`_consume_head`) and inherit the lifecycle bookkeeping. The
    ``(time, seq)`` pop order is part of the contract and is asserted
    to be identical across backends by property tests.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._live = 0
        #: Lifetime churn counters (read by the kernel self-profiler):
        #: total pushes (including slot-reuse re-pushes), effective
        #: cancellations, and dead entries lazily discarded from the
        #: scheduler structures. Plain ints — one increment each.
        self.pushes = 0
        self.cancels = 0
        self.pruned = 0

    # -- storage hooks --------------------------------------------------
    def _insert(self, t: float, seq: int, ev: Event) -> None:
        raise NotImplementedError

    def _head(self) -> Entry | None:
        """Next live entry without consuming it (skips dead entries)."""
        raise NotImplementedError

    def _consume_head(self) -> None:
        """Remove the entry :meth:`_head` just returned."""
        raise NotImplementedError

    # -- the public contract --------------------------------------------
    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
        parent: int = -1,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if math.isnan(time):
            raise ValueError("event time is NaN")
        t = float(time)
        seq = next(self._counter)
        # allocate without the __init__ call frame — one push per
        # simulated message makes this the kernel's hottest allocation
        # (keep the field list in sync with Event.__init__)
        ev = Event.__new__(Event)
        ev.time = t
        ev.seq = seq
        ev.callback = callback
        ev.label = label
        ev.parent = parent
        ev.state = PENDING
        ev.owner = self
        self._insert(t, seq, ev)
        self._live += 1
        self.pushes += 1
        return ev

    def repush(self, event: Event, time: float, parent: int = -1) -> Event:
        """Re-arm a *fired* event at ``time``, reusing its slot.

        The event gets a fresh sequence number (so the deterministic
        ``(time, seq)`` tie order is exactly what a fresh :meth:`push`
        would have produced) but no new object is allocated — the
        periodic-tick hot path. Only fired events may be recycled:
        their queue entry was physically consumed by :meth:`pop`, so
        no stale reference can resurrect at the old position.
        """
        if event.owner is not self:
            raise ValueError("event belongs to a different EventQueue")
        if event.state != FIRED:
            raise ValueError(
                f"can only repush a fired event, not a {_STATE_NAMES[event.state]} one"
            )
        if math.isnan(time):
            raise ValueError("event time is NaN")
        t = float(time)
        seq = next(self._counter)
        event.time = t
        event.seq = seq
        event.parent = parent
        event.state = PENDING
        self._insert(t, seq, event)
        self._live += 1
        self.pushes += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it is still pending.

        Safe in every lifecycle state: cancelling an event that
        already fired, or cancelling twice, is a no-op — the live
        count and ``queue_depth`` telemetry stay truthful. Cancelling
        an event owned by a *different* queue raises ``ValueError``
        (sequence numbers are per-queue; honouring a foreign handle
        could kill an unrelated event).
        """
        if event.owner is not self:
            raise ValueError("event belongs to a different EventQueue")
        if event.state == PENDING:
            event.state = CANCELLED
            self._live -= 1
            self.cancels += 1
            self._on_cancel(event)

    def _on_cancel(self, event: Event) -> None:
        """Backend hook: invalidate caches that may point at ``event``."""

    def peek(self) -> Event | None:
        """The next live event without removing it, or ``None``.

        Dead (cancelled) entries are discarded during the same scan —
        a subsequent :meth:`pop` reuses the located head instead of
        pruning again, so the drain loop skips each dead entry exactly
        once.
        """
        entry = self._head()
        return entry[2] if entry is not None else None

    def peek_time(self) -> float | None:
        """Return the fire time of the next live event, or ``None``."""
        entry = self._head()
        return entry[0] if entry is not None else None

    def pop(self) -> Event:
        """Remove and return the next live event, marking it fired.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        ev = self.pop_due()
        if ev is None:
            raise IndexError("pop from empty EventQueue")
        return ev

    def pop_due(self, until: float | None = None) -> Event | None:
        """Pop the next live event if it fires at or before ``until``.

        :meth:`peek` + :meth:`pop` fused into a single head resolution
        — the drain loop's per-event path. Returns ``None`` when the
        queue is empty *or* the head fires after ``until``, the two
        cases a drain loop treats identically (stop draining; the head
        stays queued for a later ``run``).
        """
        entry = self._head()
        if entry is None:
            return None
        if until is not None and entry[0] > until:
            return None
        self._consume_head()
        ev = entry[2]
        ev.state = FIRED
        self._live -= 1
        return ev


class HeapEventQueue(_EventQueueBase):
    """Binary-heap backend: ``(time, seq, event)`` tuples.

    The reference implementation — simple, allocation-light, and with
    all comparisons at C speed. Cancellation is lazy: dead entries are
    discarded when they surface at the heap top.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[Entry] = []

    def _insert(self, t: float, seq: int, ev: Event) -> None:
        heappush(self._heap, (t, seq, ev))

    def _head(self) -> Entry | None:
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].state == PENDING:
                return entry
            heappop(heap)
            self.pruned += 1
        return None

    def _consume_head(self) -> None:
        heappop(self._heap)


class CalendarEventQueue(_EventQueueBase):
    """Calendar/bucket wheel with a far-future heap fallback.

    Time is divided into fixed windows of ``bucket_width_s`` seconds;
    window ``n`` holds events with ``int(t / width) == n``. The wheel
    covers ``n_buckets`` consecutive windows starting at the drain
    cursor; scheduling inside that horizon is an O(1) ``list.append``.
    Events beyond the horizon fall back to a binary heap and either
    migrate into the wheel when the cursor reaches them (wheel empty:
    the cursor *snaps* to the heap's next window and one horizon's
    worth of events is batch-placed) or, while the wheel is busy, pop
    straight off the heap when they are globally next.

    Buckets are sorted lazily — once, when the cursor arrives — and
    then drained by index; events scheduled into the bucket currently
    being drained are insorted behind the drain pointer. A bucket
    occupancy bitmap lets the cursor jump over empty windows in O(1)
    big-int operations instead of scanning.

    The pop order is exactly ``(time, seq)``: windows partition time
    monotonically, in-bucket sorting orders within a window, and the
    head is always the minimum of the wheel's next entry and the far
    heap's top.
    """

    def __init__(self, bucket_width_s: float = 0.005, n_buckets: int = 512) -> None:
        super().__init__()
        if not (bucket_width_s > 0) or bucket_width_s < 1e-9:
            raise ValueError(f"bucket width must be >= 1ns, got {bucket_width_s}")
        if n_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {n_buckets}")
        self._inv_w = 1.0 / float(bucket_width_s)
        self._nb = n_buckets
        self._buckets: list[list[Entry]] = [[] for _ in range(n_buckets)]
        self._occ = 0  # bitmap: bit i set iff self._buckets[i] is non-empty
        # bytearray mirror of the bitmap: a C-speed membership test so
        # repeat appends to an already-occupied bucket skip the big-int
        # shift/or (which allocates a fresh 512-bit int every time)
        self._occ_b = bytearray(n_buckets)
        self._ncur = 0  # absolute window number the cursor is on
        self._ptr = 0  # drain index into the cursor's bucket
        self._cur_sorted = False  # cursor bucket sorted yet?
        self._wheel_count = 0  # physical entries in the wheel (incl. dead)
        self._far: list[Entry] = []  # heap of beyond-horizon entries
        #: Dedicated slot for the only entry of an otherwise-empty
        #: queue. The dominant kernel pattern — a self-rescheduling
        #: chain that pops its one event and pushes the successor —
        #: never touches buckets, bitmap or heap this way. Invariant:
        #: while set, the wheel and the far heap are empty.
        self._solo: Entry | None = None
        self._cached_head: Entry | None = None
        self._head_is_far = False

    # -- placement ------------------------------------------------------
    def _window(self, t: float) -> int:
        # One float multiply + truncation; monotone in t for t >= 0, and
        # equal times always share a window, which is all correctness
        # needs. (Times are virtual seconds >= 0 in practice; anything
        # at or before the cursor window lands in the cursor bucket.)
        return int(t * self._inv_w)

    def _insert(self, t: float, seq: int, ev: Event) -> None:
        entry = (t, seq, ev)
        solo = self._solo
        if solo is None and not self._wheel_count and not self._far:
            if not math.isinf(t):
                # empty queue: seat the entry in the solo slot
                self._solo = entry
                self._cached_head = entry
                self._head_is_far = False
                return
            heappush(self._far, entry)
            self._cached_head = entry
            self._head_is_far = True
            return
        if solo is not None:
            # a second entry arrived: demote the solo occupant into the
            # regular structures first (wheel and far heap are empty,
            # so the cursor is free to snap onto its window)
            self._solo = None
            st = solo[0]
            if math.isinf(st):
                heappush(self._far, solo)
            else:
                w = int(st * self._inv_w)
                self._ncur = w
                i = w % self._nb
                self._buckets[i].append(solo)
                self._occ_b[i] = 1
                self._occ |= 1 << i
                self._ptr = 0
                self._cur_sorted = True
                self._wheel_count = 1
        if math.isinf(t):
            heappush(self._far, entry)
            went_far = True
        else:
            k = int(t * self._inv_w) - self._ncur
            if k >= self._nb:
                heappush(self._far, entry)
                went_far = True
            elif k > 0:
                # :meth:`_place` inlined for the two hot cases — a
                # future window is a plain append, the cursor's own
                # window an insort behind the drain pointer
                i = (self._ncur + k) % self._nb
                self._buckets[i].append(entry)
                if not self._occ_b[i]:
                    self._occ_b[i] = 1
                    self._occ |= 1 << i
                self._wheel_count += 1
                went_far = False
            else:
                i = self._ncur % self._nb
                b = self._buckets[i]
                if self._cur_sorted:
                    insort(b, entry, self._ptr)
                else:
                    b.append(entry)
                if not self._occ_b[i]:
                    self._occ_b[i] = 1
                    self._occ |= 1 << i
                self._wheel_count += 1
                went_far = False
        cached = self._cached_head
        if cached is not None and entry < cached:
            # the new event is the queue's new head: a far entry that
            # beats the cache is necessarily the far heap's new top, so
            # the cache can track it directly; a wheel entry may sit in
            # a bucket the cursor has not reached, so recompute lazily
            if went_far:
                self._cached_head = entry
                self._head_is_far = True
            else:
                self._cached_head = None

    def _place(self, entry: Entry, k: int) -> None:
        """Put ``entry`` in the wheel, ``k`` windows past the cursor."""
        nb = self._nb
        if k <= 0:
            # the cursor's own window (or nominally before it, which
            # only happens for past-time pushes the kernel forbids and
            # far-heap migrations after a cursor overshoot): insort
            # behind the drain pointer so the in-bucket order stays
            # total
            i = self._ncur % nb
            b = self._buckets[i]
            if self._cur_sorted:
                insort(b, entry, self._ptr)
            else:
                b.append(entry)
        else:
            i = (self._ncur + k) % nb
            b = self._buckets[i]
            b.append(entry)
        if not self._occ_b[i]:
            self._occ_b[i] = 1
            self._occ |= 1 << i
        self._wheel_count += 1

    # -- head resolution ------------------------------------------------
    def _on_cancel(self, event: Event) -> None:
        solo = self._solo
        if solo is not None and solo[2] is event:
            # the solo occupant dies in place — O(1) physical removal
            self._solo = None
            self.pruned += 1
        cached = self._cached_head
        if cached is not None and cached[2] is event:
            self._cached_head = None

    def _wheel_head(self) -> Entry | None:
        """First live wheel entry; advances the cursor, prunes dead."""
        nb = self._nb
        while self._wheel_count:
            i = self._ncur % nb
            b = self._buckets[i]
            if b:
                if not self._cur_sorted:
                    b.sort()
                    self._cur_sorted = True
                j = self._ptr
                n = len(b)
                while j < n:
                    entry = b[j]
                    if entry[2].state == PENDING:
                        self._ptr = j
                        return entry
                    j += 1
                    self._wheel_count -= 1
                    self.pruned += 1
                b.clear()
                self._occ_b[i] = 0
                self._occ &= ~(1 << i)
                self._ptr = 0
                self._cur_sorted = False
                if not self._wheel_count:
                    return None
            occ = self._occ
            if not occ:
                return None
            # jump the cursor to the next occupied bucket: bit i is
            # clear here, so the low bit of occ >> i is the distance
            # ahead; when nothing is set above i, wrap to the lowest
            # set bit from index 0
            m = occ >> i
            if m:
                step = (m & -m).bit_length() - 1
            else:
                step = nb - i + (occ & -occ).bit_length() - 1
            self._ncur += step
            self._ptr = 0
            self._cur_sorted = False
        return None

    def _prune_far(self) -> None:
        far = self._far
        while far and far[0][2].state != PENDING:
            heappop(far)
            self.pruned += 1

    def _refill_from_far(self) -> None:
        """Wheel drained: snap the cursor to the far heap and batch-
        migrate one horizon's worth of events into the wheel."""
        far = self._far
        t0 = far[0][0]
        if not math.isinf(t0):
            self._ncur = self._window(t0)
            self._ptr = 0
            self._cur_sorted = False
            while far:
                t, _seq, ev = far[0]
                if math.isinf(t):
                    break
                k = self._window(t) - self._ncur
                if k >= self._nb:
                    break
                entry = heappop(far)
                if ev.state != PENDING:
                    self.pruned += 1
                    continue
                self._place(entry, k)

    def _head(self) -> Entry | None:
        cached = self._cached_head
        if cached is not None:
            return cached
        solo = self._solo
        if solo is not None:
            # solo implies the wheel and far heap are empty, and a
            # cancelled solo is dropped eagerly, so this entry is live
            self._cached_head = solo
            self._head_is_far = False
            return solo
        wheel: Entry | None = None
        if self._wheel_count:
            # hot continuation: the cursor bucket is already sorted and
            # its next entry is live — resolved without a scan or call
            if self._cur_sorted:
                b = self._buckets[self._ncur % self._nb]
                j = self._ptr
                if j < len(b):
                    e = b[j]
                    if e[2].state == PENDING:
                        wheel = e
            if wheel is None:
                wheel = self._wheel_head()
        far = self._far
        if far and far[0][2].state != PENDING:
            self._prune_far()
        if wheel is None and far:
            self._refill_from_far()
            wheel = self._wheel_head() if self._wheel_count else None
            self._prune_far()
        if not far:
            if wheel is None:
                return None
            self._cached_head = wheel
            self._head_is_far = False
            return wheel
        fhead = far[0]
        if wheel is None or fhead < wheel:
            self._cached_head = fhead
            self._head_is_far = True
            return fhead
        self._cached_head = wheel
        self._head_is_far = False
        return wheel

    def _consume_head(self) -> None:
        if self._solo is not None:
            # solo implies it *is* the head (only live entry anywhere)
            self._solo = None
            self._cached_head = None
            return
        if self._head_is_far:
            heappop(self._far)
        else:
            self._ptr += 1
            self._wheel_count -= 1
            # Eagerly retire the cursor bucket once consumption drains
            # it. Leaving consumed entries behind would let a later
            # far-heap snap land on the same bucket index and re-count
            # them as dead skips, corrupting ``_wheel_count``.
            i = self._ncur % self._nb
            b = self._buckets[i]
            if self._ptr >= len(b):
                b.clear()
                self._occ_b[i] = 0
                self._occ &= ~(1 << i)
                self._ptr = 0
                self._cur_sorted = False
        self._cached_head = None

    def pop_due(self, until: float | None = None) -> Event | None:
        # Overrides the base implementation to resolve, bounds-check
        # and consume the head without the _head/_consume_head call
        # frames on a cache hit — this is the kernel drain loop's
        # per-event path. The consume arms mirror :meth:`_consume_head`
        # exactly (keep them in sync).
        entry = self._cached_head
        if entry is None:
            entry = self._head()
            if entry is None:
                return None
        if until is not None and entry[0] > until:
            return None
        if self._solo is not None:
            self._solo = None
            self._cached_head = None
        elif self._head_is_far:
            heappop(self._far)
            self._cached_head = None
        else:
            self._ptr += 1
            self._wheel_count -= 1
            i = self._ncur % self._nb
            b = self._buckets[i]
            if self._ptr >= len(b):
                b.clear()
                self._occ_b[i] = 0
                self._occ &= ~(1 << i)
                self._ptr = 0
                self._cur_sorted = False
            self._cached_head = None
        ev = entry[2]
        ev.state = FIRED
        self._live -= 1
        return ev


#: The kernel's default scheduler backend.
EventQueue = CalendarEventQueue
