"""Virtual clock shared by every component of a simulation."""

from __future__ import annotations


class SimClock:
    """Monotonic virtual clock measured in seconds.

    Only the :class:`~repro.sim.kernel.Simulator` advances the clock;
    every other component reads it through :meth:`now`. Attempting to
    move time backwards raises, which catches scheduling bugs early.
    """

    def __init__(self, start: float = 0.0) -> None:
        # The kernel's drain loop reads (and, on its fast path, writes)
        # ``_now`` directly after its own monotonicity check — one
        # attribute access per event instead of a call frame.
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Advance the clock to absolute time ``t`` (kernel use only)."""
        if t < self._now:
            raise ValueError(f"clock moving backwards: {t} < {self._now}")
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(t={self._now:.6f})"
