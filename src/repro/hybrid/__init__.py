"""``repro.hybrid`` — fluid/DES hybrid serving for huge fleets.

K focal tenants run in full DES through :mod:`repro.cloud` while the
other N−K tenants impose load as calibrated fluid demand
(:class:`FluidBackground`), so admission, autoscaling and balancing
can be exercised at N=10^5–10^6 tenants. See ``docs/hybrid.md`` and
``python -m repro fleet --hybrid``.
"""

from repro.hybrid.admission import BackgroundAdmission, admit_background
from repro.hybrid.background import FluidBackground
from repro.hybrid.experiment import (
    HybridOutcome,
    HybridResult,
    run_fleet_hybrid,
    serve_hybrid_point,
)

__all__ = [
    "BackgroundAdmission",
    "FluidBackground",
    "HybridOutcome",
    "HybridResult",
    "admit_background",
    "run_fleet_hybrid",
    "serve_hybrid_point",
]
