"""The hybrid fleet experiment: K focal DES tenants + N−K fluid load.

``python -m repro fleet --hybrid --tenants N --focal K`` runs the
serving layer at fleet sizes the pure DES cannot touch: the K focal
robots are simulated tick by tick (radio, queueing/sharing, batching,
telemetry — everything), while the other N−K tenants press on the
same pool through a calibrated :class:`~repro.hybrid.FluidBackground`.
Cost scales with K and the admission loop's O(N), so N=10^5–10^6 runs
in seconds.

Both admission policies are reported, mirroring
:mod:`repro.experiments.fleet_scale`:

* **admission** — focal tenants pass the Eq. 2c gate one by one (the
  same sequential prefix a full-DES run would produce), then the
  background population is ruled on in aggregate, bit-equal to
  sequential admission (:mod:`repro.hybrid.admission`);
* **admit-all** — everyone in: the fluid demand is the full N−K
  population and the focal tenants measure what that does to service.

A point's ``deadline_ok`` combines both halves: the focal verdict is
*measured* (every admitted focal tenant's p95 within its deadline),
the background verdict is the fluid projection
(:meth:`~repro.hybrid.FluidBackground.p95_s` within the deadline).
With ``N == K`` the background is empty and a point reduces exactly —
byte-identically — to the plain fleet experiment's serving run.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud import (
    AdmissionController,
    BatchPolicy,
    RobotTenant,
    TenantSpec,
    TenantStats,
    WorkerPool,
    make_balancer,
    make_scheduler,
)
from repro.compute.host import Host
from repro.compute.platform import CLOUD_SERVER, TURTLEBOT3_PI
from repro.control.velocity_law import max_velocity_oa
from repro.experiments.fleet_scale import (
    _build_radio,
    _jsonable,
    _tenant_name,
)
from repro.extensions.fleet import FleetServerModel
from repro.hybrid.background import FluidBackground
from repro.network.fabric import FleetRadioNetwork
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class HybridOutcome:
    """One hybrid serving run under one admission policy."""

    policy: str  # "admission" | "admit-all"
    n_tenants: int
    focal: int
    # focal half (measured)
    focal_admitted: int
    focal_downgraded: int
    focal_rejected: int
    ticks: int
    served: int
    lost: int
    worst_focal_p95_s: float
    focal_deadline_ok: bool
    # background half (fluid)
    bg_admitted: int
    bg_downgraded: int
    bg_rejected: int
    bg_demand_cores: float
    cal_ratio: float
    bg_p95_s: float
    bg_deadline_ok: bool
    # pool-wide
    utilization: float
    batches: int
    batched_requests: int
    duplicate_completions: int
    tenants: tuple[TenantStats, ...]

    @property
    def deadline_ok(self) -> bool:
        """Both halves hold: measured focal and projected background."""
        return self.focal_deadline_ok and self.bg_deadline_ok

    @property
    def admitted(self) -> int:
        """Total admitted tenants, focal + fluid."""
        return self.focal_admitted + self.bg_admitted

    @property
    def batch_occupancy(self) -> float:
        """Mean requests per executed batch (NaN when unbatched)."""
        if self.batches == 0:
            return math.nan
        return self.batched_requests / self.batches


@dataclass(frozen=True)
class HybridResult:
    """Both policies at one hybrid fleet size."""

    tenants: int
    focal: int
    workers: int
    scheduler: str
    balancer: str
    seed: int
    sim_time_s: float
    tick_rate_hz: float
    threads: int
    local_vdp_s: float
    calibrated_t_iso_s: float
    batching: BatchPolicy | None
    admission: HybridOutcome
    admit_all: HybridOutcome

    def render(self) -> str:
        pol = self.batching
        batch_line = (
            f"batching max_size={pol.max_size} max_wait={pol.max_wait_s * 1e3:.0f} ms "
            f"amortization={pol.amortization:.2f}"
            if pol is not None
            else "batching off"
        )
        lines = [
            f"Hybrid fleet: N={self.tenants} tenants ({self.focal} focal DES, "
            f"{self.tenants - self.focal} fluid) on {self.workers} x "
            f"{CLOUD_SERVER.name}, {self.scheduler} scheduler, {batch_line}",
            f"  calibrated t_iso {self.calibrated_t_iso_s:.4f} s "
            f"({self.tick_rate_hz:.0f} Hz ticks, deadline "
            f"{1.0 / self.tick_rate_hz:.2f} s)",
        ]
        for o in (self.admission, self.admit_all):
            occ = (
                f", batch occupancy {o.batch_occupancy:.2f}"
                if o.batches
                else ""
            )
            lines.append(
                f"  {o.policy}: admitted {o.admitted}/{o.n_tenants} "
                f"(focal {o.focal_admitted}/{o.focal}, "
                f"fluid {o.bg_admitted}/{o.n_tenants - o.focal}); "
                f"util {o.utilization:.2f}, focal p95 "
                f"{o.worst_focal_p95_s:.3f} s, fluid p95 {o.bg_p95_s:.3f} s "
                f"-> {'ok' if o.deadline_ok else 'DEADLINE BLOWN'}{occ}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        pol = self.batching
        return {
            "meta": {
                "tenants": self.tenants,
                "focal": self.focal,
                "workers": self.workers,
                "scheduler": self.scheduler,
                "balancer": self.balancer,
                "seed": self.seed,
                "sim_time_s": self.sim_time_s,
                "tick_rate_hz": self.tick_rate_hz,
                "threads": self.threads,
                "local_vdp_s": self.local_vdp_s,
                "calibrated_t_iso_s": self.calibrated_t_iso_s,
                "server": CLOUD_SERVER.name,
                "batching": (
                    {
                        "max_size": pol.max_size,
                        "max_wait_s": pol.max_wait_s,
                        "amortization": pol.amortization,
                        "deadline_guard_s": pol.deadline_guard_s,
                    }
                    if pol is not None
                    else None
                ),
            },
            "policies": {
                o.policy: {
                    "n_tenants": o.n_tenants,
                    "focal": o.focal,
                    "focal_admitted": o.focal_admitted,
                    "focal_downgraded": o.focal_downgraded,
                    "focal_rejected": o.focal_rejected,
                    "ticks": o.ticks,
                    "served": o.served,
                    "lost": o.lost,
                    "worst_focal_p95_s": _jsonable(o.worst_focal_p95_s),
                    "focal_deadline_ok": o.focal_deadline_ok,
                    "bg_admitted": o.bg_admitted,
                    "bg_downgraded": o.bg_downgraded,
                    "bg_rejected": o.bg_rejected,
                    "bg_demand_cores": o.bg_demand_cores,
                    "cal_ratio": o.cal_ratio,
                    "bg_p95_s": _jsonable(o.bg_p95_s),
                    "bg_deadline_ok": o.bg_deadline_ok,
                    "utilization": o.utilization,
                    "batches": o.batches,
                    "batched_requests": o.batched_requests,
                    "batch_occupancy": _jsonable(o.batch_occupancy),
                    "duplicate_completions": o.duplicate_completions,
                    "deadline_ok": o.deadline_ok,
                    "tenants": [
                        {
                            "tenant": t.tenant,
                            "threads": t.threads,
                            "ticks": t.ticks,
                            "served": t.served,
                            "lost": t.lost,
                            "mean_latency_s": _jsonable(t.mean_latency_s),
                            "p95_latency_s": _jsonable(t.p95_latency_s),
                            "deadline_miss_rate": _jsonable(
                                t.deadline_miss_rate
                            ),
                            "velocity_mps": _jsonable(t.velocity_mps),
                        }
                        for t in o.tenants
                    ],
                }
                for o in (self.admission, self.admit_all)
            },
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, so equal runs are bit-identical."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def write_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())
        return path


# ----------------------------------------------------------------------
# One hybrid serving run
# ----------------------------------------------------------------------
def serve_hybrid_point(
    n_tenants: int,
    focal: int,
    workers: int,
    scheduler: str,
    balancer: str,
    admission: bool,
    sim_time_s: float,
    tick_rate_hz: float,
    cycles: float,
    threads: int,
    local_vdp_s: float,
    wired_latency_s: float,
    seed: int,
    use_radio: bool,
    telemetry: "Telemetry | None",
    batching: BatchPolicy | None = None,
    model: FleetServerModel | None = None,
    recalibrate_every_s: float = 1.0,
    jitter: float = 0.0,
) -> HybridOutcome:
    """One hybrid fleet size under one policy; a fresh simulator.

    Structured to shadow
    :func:`repro.experiments.fleet_scale.serve_fleet_point` statement
    for statement on the focal path, so ``n_tenants == focal`` (and no
    batching) replays the plain fleet serving run event for event —
    the byte-identity contract ``tests/test_hybrid.py`` pins.
    """
    if not 0 < focal <= n_tenants:
        raise ValueError(
            f"need 0 < focal <= tenants, got focal={focal} tenants={n_tenants}"
        )
    sim = Simulator()
    hosts = [Host(f"cloud-vm{i}", CLOUD_SERVER) for i in range(workers)]
    pool = WorkerPool(
        sim,
        hosts,
        make_scheduler(scheduler),
        make_balancer(balancer),
        telemetry=telemetry,
        batching=batching,
    )
    controller = AdmissionController(
        pool, network_latency_s=wired_latency_s, telemetry=telemetry
    )
    radio: FleetRadioNetwork | None = None
    if use_radio:
        radio, positions = _build_radio(focal, wired_latency_s, seed)

    period = 1.0 / tick_rate_hz
    tenants: list[RobotTenant] = []
    stats: list[TenantStats] = []
    rejected = downgraded = 0
    v_local = max_velocity_oa(local_vdp_s, hardware_cap=1.0)
    for i in range(focal):
        spec = TenantSpec(
            _tenant_name(i), cycles, threads, tick_rate_hz, local_vdp_s
        )
        if admission:
            decision = controller.request_admission(spec)
            if not decision.admitted:
                rejected += 1
                stats.append(
                    TenantStats(
                        tenant=spec.name,
                        threads=0,
                        ticks=0,
                        served=0,
                        lost=0,
                        mean_latency_s=local_vdp_s,
                        p95_latency_s=local_vdp_s,
                        deadline_miss_rate=0.0,
                        velocity_mps=v_local,
                    )
                )
                continue
            if decision.downgraded:
                downgraded += 1
            granted = controller.admitted[spec.name]
        else:
            granted = spec
        if radio is not None:
            radio.attach(spec.name, positions[spec.name])
        tenants.append(
            RobotTenant(
                sim,
                granted,
                pool,
                radio=radio,
                # Focal tenants keep the phases they would have in the
                # full-DES fleet of the same size N, so their burst
                # pattern matches the run they stand in for.
                phase_s=(i / n_tenants) * period,
                telemetry=telemetry,
            )
        )
    bg_spec = TenantSpec(
        "background", cycles, threads, tick_rate_hz, local_vdp_s
    )
    background = FluidBackground(
        sim,
        pool,
        bg_spec,
        n_tenants - focal,
        controller=controller if admission else None,
        model=model,
        recalibrate_every_s=recalibrate_every_s,
        jitter=jitter,
        seed=seed,
        telemetry=telemetry,
    )
    bg_admission = background.attach()
    for t in tenants:
        t.start()
    sim.run(until=sim_time_s)

    focal_stats = [t.stats() for t in tenants]
    stats.extend(focal_stats)
    served_p95s = [s.p95_latency_s for s in focal_stats if s.served > 0]
    deadline = period
    focal_ok = bool(focal_stats) and all(
        s.served > 0 and s.p95_latency_s <= deadline for s in focal_stats
    )
    batches, batched_requests = pool.batch_stats()
    return HybridOutcome(
        policy="admission" if admission else "admit-all",
        n_tenants=n_tenants,
        focal=focal,
        focal_admitted=len(tenants),
        focal_downgraded=downgraded,
        focal_rejected=rejected,
        ticks=sum(s.ticks for s in focal_stats),
        served=sum(s.served for s in focal_stats),
        lost=sum(s.lost for s in focal_stats),
        worst_focal_p95_s=max(served_p95s) if served_p95s else math.nan,
        focal_deadline_ok=focal_ok,
        bg_admitted=bg_admission.admitted,
        bg_downgraded=bg_admission.downgraded,
        bg_rejected=bg_admission.rejected,
        bg_demand_cores=bg_admission.demand_cores,
        cal_ratio=background.cal_ratio,
        bg_p95_s=background.p95_s(wired_latency_s),
        bg_deadline_ok=background.deadline_ok(),
        utilization=pool.utilization(sim.now()),
        batches=batches,
        batched_requests=batched_requests,
        duplicate_completions=pool.duplicate_completions,
        tenants=tuple(sorted(stats, key=lambda s: s.tenant)),
    )


def run_fleet_hybrid(
    tenants: int = 10_000,
    focal: int = 8,
    workers: int = 2,
    scheduler: str = "ps",
    balancer: str = "least-loaded",
    sim_time_s: float = 20.0,
    tick_rate_hz: float = 5.0,
    vdp_cycles: float = 1.4e9,
    threads: int = 8,
    wired_latency_s: float = 0.02,
    seed: int = 0,
    use_radio: bool = True,
    telemetry: "Telemetry | None" = None,
    batching: BatchPolicy | None = None,
    recalibrate_every_s: float = 1.0,
    jitter: float = 0.0,
) -> HybridResult:
    """The hybrid fleet experiment at one (N, K) point, both policies.

    The fluid model is first fitted from a short DES run
    (:meth:`~repro.extensions.fleet.FleetServerModel.calibrate_from_des`)
    and then re-calibrated every ``recalibrate_every_s`` virtual
    seconds from the focal tenants' observed service times.
    Deterministic: same arguments -> bit-identical
    :meth:`HybridResult.to_json`, regardless of ``PYTHONHASHSEED``.
    """
    local_vdp_s = vdp_cycles / TURTLEBOT3_PI.effective_hz
    model = FleetServerModel.calibrate_from_des(
        server=CLOUD_SERVER,
        vdp_cycles=vdp_cycles,
        threads=threads,
        tick_rate_hz=tick_rate_hz,
        network_latency_s=wired_latency_s,
    )
    outcomes = {}
    for admission in (True, False):
        outcomes[admission] = serve_hybrid_point(
            tenants,
            focal,
            workers,
            scheduler,
            balancer,
            admission,
            sim_time_s,
            tick_rate_hz,
            vdp_cycles,
            threads,
            local_vdp_s,
            wired_latency_s,
            seed,
            use_radio,
            telemetry,
            batching=batching,
            model=model,
            recalibrate_every_s=recalibrate_every_s,
            jitter=jitter,
        )
    assert model.calibrated_t_iso_s is not None
    return HybridResult(
        tenants=tenants,
        focal=focal,
        workers=workers,
        scheduler=scheduler,
        balancer=balancer,
        seed=seed,
        sim_time_s=sim_time_s,
        tick_rate_hz=tick_rate_hz,
        threads=threads,
        local_vdp_s=local_vdp_s,
        calibrated_t_iso_s=model.calibrated_t_iso_s,
        batching=batching,
        admission=outcomes[True],
        admit_all=outcomes[False],
    )
