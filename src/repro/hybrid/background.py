"""The fluid half of a hybrid run: N−K tenants as continuous demand.

A :class:`FluidBackground` represents a large population of identical
background tenants by the *rate* at which they claim server cores —
``admitted × tick_rate × t_iso × width`` core-seconds per second, the
quantity :mod:`repro.extensions.fleet` reasons about — instead of by
per-tenant DES events. The demand is imposed on the
:class:`~repro.cloud.pool.WorkerPool` (stretching focal service per
the processor-sharing fluid limit) and on the
:class:`~repro.cloud.admission.AdmissionController` (counted in every
projection), so utilization, admission and autoscaling signals all see
the full fleet at the cost of O(1) state.

**Calibration loop.** The fluid rate is only as good as its ``t_iso``.
A periodic process compares the pool's *observed* contention-free
service seconds (host derates and batching amortization included)
against the execution model's prediction for the same completions and
re-scales the imposed demand by their ratio — the focal tenants'
real DES service times continuously correct the background model, as
the ISSUE's calibration-loop design calls for. Optionally the demand
carries a bounded deterministic jitter (drawn from
:func:`repro.sim.rng.seeded_rng`) to model background-load
fluctuation without sacrificing reproducibility.

A background of **zero tenants is inert**: no demand is imposed, no
re-calibration process is scheduled, and the run's event stream is
byte-identical to a plain fleet run (pinned in ``tests/test_hybrid.py``).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.cloud.admission import AdmissionController, TenantSpec
from repro.cloud.pool import WorkerPool
from repro.extensions.fleet import FleetServerModel
from repro.hybrid.admission import BackgroundAdmission, admit_background
from repro.sim.kernel import Process, Simulator
from repro.sim.rng import seeded_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

#: Completions the pool must have seen before the observed/predicted
#: ratio is trusted over the execution model's prior.
_MIN_CALIBRATION_SAMPLES = 8


class FluidBackground:
    """N identical background tenants as calibrated fluid demand.

    Parameters
    ----------
    sim, pool:
        The simulation and the pool the demand is imposed on.
    spec:
        The background tenant archetype (same spec the focal tenants
        use in a homogeneous fleet).
    n_tenants:
        Population size (N−K). Zero imposes nothing and schedules
        nothing.
    controller:
        When given, the population passes through the Eq. 2c gate via
        :func:`repro.hybrid.admission.admit_background` (bit-equal to
        sequential admission) and its demand joins the controller's
        projections. ``None`` admits everyone at the requested width
        (the admit-all policy).
    model:
        Optional :class:`~repro.extensions.fleet.FleetServerModel`,
        typically built by
        :meth:`~repro.extensions.fleet.FleetServerModel.calibrate_from_des`:
        its fitted ``t_iso`` *seeds* the calibration ratio (instead of
        starting at the analytical prior of 1.0) before the periodic
        re-fit takes over.
    recalibrate_every_s:
        Period of the re-calibration process; ``0`` disables it.
    jitter:
        Fractional demand fluctuation per re-calibration, drawn
        uniformly from ``[-jitter, +jitter]`` with a generator seeded
        from ``seed`` — deterministic across runs.
    pools, controllers:
        Optional multi-pool mode (a :mod:`repro.sites` city): the
        admitted demand is split across ``pools`` proportional to each
        pool's live capacity, and each pool's share is mirrored into
        the matching entry of ``controllers`` (``None`` entries
        allowed). ``pool`` must be ``pools[0]`` — it stays the
        reference for admission width and fluid projections. With one
        pool (or ``pools`` omitted) every code path is identical to
        the single-pool build. Capacity changes (a site outage, an
        autoscaler step) re-split on the next re-calibration tick, or
        immediately via :meth:`rebalance`.
    """

    def __init__(
        self,
        sim: Simulator,
        pool: WorkerPool,
        spec: TenantSpec,
        n_tenants: int,
        controller: AdmissionController | None = None,
        model: FleetServerModel | None = None,
        recalibrate_every_s: float = 1.0,
        jitter: float = 0.0,
        seed: int = 0,
        telemetry: "Telemetry | None" = None,
        pools: "Sequence[WorkerPool] | None" = None,
        controllers: "Sequence[AdmissionController | None] | None" = None,
    ) -> None:
        if n_tenants < 0:
            raise ValueError(f"n_tenants must be non-negative, got {n_tenants}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.sim = sim
        self.pool = pool
        self.spec = spec
        self.n_tenants = n_tenants
        self.controller = controller
        self.pools: tuple[WorkerPool, ...] = (
            tuple(pools) if pools is not None else (pool,)
        )
        if not self.pools or self.pools[0] is not pool:
            raise ValueError("pools[0] must be the primary pool")
        self.controllers: tuple[AdmissionController | None, ...] = (
            tuple(controllers)
            if controllers is not None
            else (controller,) + (None,) * (len(self.pools) - 1)
        )
        if len(self.controllers) != len(self.pools):
            raise ValueError(
                f"controllers length {len(self.controllers)} != "
                f"pools length {len(self.pools)}"
            )
        self.recalibrate_every_s = recalibrate_every_s
        self.jitter = jitter
        self.telemetry = telemetry
        self._rng = seeded_rng(seed) if jitter > 0.0 else None
        #: The gate's ruling, set by :meth:`attach`.
        self.admission: BackgroundAdmission | None = None
        #: Admitted demand at the model's prior t_iso (cal_ratio 1.0).
        self.base_demand_cores = 0.0
        #: Observed/predicted service-time ratio from the last
        #: re-calibration. Seeded from the DES-fitted model when one is
        #: given; re-fit from live completions thereafter.
        self.cal_ratio = 1.0
        if model is not None and model.calibrated_t_iso_s is not None:
            analytic = FleetServerModel(
                server=model.server,
                vdp_cycles=model.vdp_cycles,
                threads=model.threads,
                tick_rate_hz=model.tick_rate_hz,
                network_latency_s=model.network_latency_s,
                profile=model.profile,
            ).t_iso_s()
            if analytic > 0:
                self.cal_ratio = model.calibrated_t_iso_s / analytic
        self._last_demand = 0.0
        self._proc: Process | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> BackgroundAdmission:
        """Admit the population, impose its demand, start calibrating."""
        if self.controller is not None:
            result = admit_background(
                self.controller, self.spec, self.n_tenants
            )
        else:
            result = self._admit_all()
        self.admission = result
        self.base_demand_cores = result.demand_cores
        if self.n_tenants == 0:
            return result  # inert: no demand, no process, no events
        self._impose(self.base_demand_cores * self.cal_ratio)
        if self.recalibrate_every_s > 0:
            self._proc = self.sim.every(
                self.recalibrate_every_s,
                self._recalibrate,
                label="hybrid:recalibrate",
            )
        return result

    def detach(self) -> None:
        """Stop calibrating and withdraw the demand."""
        if self._proc is not None:
            self._proc.stop()
            self._proc = None
        if self.n_tenants > 0:
            self._impose(0.0)

    def _admit_all(self) -> BackgroundAdmission:
        """The admit-all policy: everyone in at the requested width."""
        n = self.n_tenants
        if n == 0:
            return BackgroundAdmission(0, self.spec.threads, 0, 0, (), 0.0)
        host = self.pool.workers[0].host
        width = min(self.spec.threads, host.platform.hardware_threads)
        t_iso = host.exec_time(
            self.spec.cycles, self.spec.threads, self.spec.profile
        )
        demand = n * self.spec.tick_rate_hz * t_iso * width
        return BackgroundAdmission(
            n, self.spec.threads, n, 0, ((self.spec.threads, n),), demand
        )

    # ------------------------------------------------------------------
    # Calibration loop
    # ------------------------------------------------------------------
    def _impose(self, cores: float) -> None:
        self._last_demand = cores
        if len(self.pools) == 1:
            self.pool.set_background_demand(cores)
            if self.controller is not None:
                self.controller.background_demand_cores = cores
            return
        # Multi-pool: split proportional to live capacity, so a dead
        # site's share flows to the survivors instead of evaporating.
        caps = [p.total_capacity() for p in self.pools]
        total = sum(caps)
        for p, ctl, cap in zip(self.pools, self.controllers, caps):
            share = cores * cap / total if total > 0 else 0.0
            p.set_background_demand(share)
            if ctl is not None:
                ctl.background_demand_cores = share

    def rebalance(self) -> None:
        """Re-split the imposed demand now (after a capacity change)."""
        if self.n_tenants > 0:
            self._impose(self._last_demand)

    def _recalibrate(self) -> None:
        """Re-fit the fluid rate from observed DES service times."""
        obs_s, pred_s, n = 0.0, 0.0, 0
        for p in self.pools:
            o, pr, k = p.observed_iso_stats()
            obs_s += o
            pred_s += pr
            n += k
        if n >= _MIN_CALIBRATION_SAMPLES and pred_s > 0:
            self.cal_ratio = obs_s / pred_s
        demand = self.base_demand_cores * self.cal_ratio
        if self._rng is not None:
            demand *= 1.0 + self.jitter * float(self._rng.uniform(-1.0, 1.0))
        self._impose(demand)
        if self.telemetry is not None:
            self.telemetry.emit(
                "hybrid_recalibrated",
                t=self.sim.now(),
                track="hybrid",
                cal_ratio=self.cal_ratio,
                demand_cores=demand,
                samples=n,
            )

    # ------------------------------------------------------------------
    # Fluid projections (the background's own service quality)
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Pool utilization with everything counted (fluid included)."""
        return self.pool.utilization(self.sim.now())

    def p95_s(self, network_latency_s: float | None = None) -> float:
        """Projected p95 tick latency of one background tenant.

        The same fluid projection the admission gate uses: calibrated
        ``t_iso`` stretched by total utilization, plus the network
        round trip, inflated by the controller's p95 factor. This is
        the background half of a hybrid run's ``deadline_ok`` verdict
        (the focal half is measured, not projected).
        """
        ctl = self.controller
        if network_latency_s is None:
            network_latency_s = ctl.network_latency_s if ctl else 0.02
        p95_factor = ctl.p95_factor if ctl else 1.25
        host = self.pool.workers[0].host
        t_iso = (
            host.exec_time(
                self.spec.cycles, self.spec.threads, self.spec.profile
            )
            * self.cal_ratio
        )
        stretch = max(1.0, self.utilization())
        return (t_iso * stretch + 2.0 * network_latency_s) * p95_factor

    def deadline_ok(self) -> bool:
        """Whether the fluid population itself is meeting its deadline."""
        if self.n_tenants == 0 or (
            self.admission is not None and self.admission.admitted == 0
        ):
            return True
        return self.p95_s() <= self.spec.deadline_s
