"""Aggregate admission for a fluid tenant population.

A hybrid run (:mod:`repro.hybrid`) asks the *same*
:class:`~repro.cloud.admission.AdmissionController` gate the focal
tenants face to rule on the N−K background tenants — but calling
``request_admission`` a hundred thousand times, each re-summing the
whole admitted dict, would be O(N²). :func:`admit_background` runs the
sequential decision loop in O(N) instead, and — because every
background tenant is an identical copy of one spec — produces *bit for
bit* the decisions sequential admission would have produced:

* the running demand total starts from the same left-fold sum over the
  controller's admitted dict that ``projected_utilization`` computes,
  and grows by one ``+=`` per admission in the same order, so every
  candidate sees the exact float the sequential path would have seen;
* once one tenant is rejected at every width of the downgrade ladder,
  every later identical tenant faces the same (unchanged) demand total
  and fails identically — the loop short-circuits.

The admitted population is never entered into ``controller.admitted``
(that dict stays per-name, for focal tenants); its demand is carried
in aggregate via ``controller.background_demand_cores`` and the pool's
fluid background load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.admission import AdmissionController, TenantSpec
from repro.control.velocity_law import max_velocity_oa


@dataclass(frozen=True)
class BackgroundAdmission:
    """The gate's aggregate ruling on N identical background tenants."""

    requested: int
    requested_threads: int
    admitted: int
    rejected: int
    #: ``(width, count)`` pairs, widest first: how many background
    #: tenants were granted each thread width.
    by_width: tuple[tuple[int, int], ...]
    #: Core-seconds per second the admitted population demands (the
    #: pool's fluid background load, before re-calibration scaling).
    demand_cores: float

    @property
    def downgraded(self) -> int:
        """Admitted below the requested width."""
        return sum(
            c for w, c in self.by_width if w < self.requested_threads
        )


def admit_background(
    controller: AdmissionController, spec: TenantSpec, n: int
) -> BackgroundAdmission:
    """Rule on ``n`` identical copies of ``spec``, sequentially-exact.

    Equivalent to ``n`` consecutive ``request_admission`` calls on
    copies of ``spec`` (same admit/downgrade/reject outcomes, same
    float comparisons), but O(n) and without flooding the controller's
    decision log. See the module docstring for why the equivalence is
    exact.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return BackgroundAdmission(0, spec.threads, 0, 0, (), 0.0)
    if not controller.pool.live_workers():
        return BackgroundAdmission(n, spec.threads, 0, n, (), 0.0)

    cap = controller._capacity()
    # Same left-fold the controller's projected_utilization computes.
    running = (
        sum(
            controller._demand(s, s.threads)
            for s in controller.admitted.values()
        )
        + controller.background_demand_cores
    )
    v_local = max_velocity_oa(spec.local_vdp_s, hardware_cap=1.0)
    ladder = controller._width_ladder(spec.threads)
    by_width: dict[int, int] = {}
    bg_demand = 0.0
    admitted = 0
    for _ in range(n):
        granted: int | None = None
        for threads in ladder:
            d = controller._demand(spec, threads)
            util = (running + d) / cap
            if util > controller.max_utilization:
                continue
            p95 = controller.projected_p95(spec, threads, util)
            v = max_velocity_oa(p95, hardware_cap=1.0)
            if p95 > spec.deadline_s or v <= v_local:
                continue
            if not _protects(controller, spec, util, by_width):
                continue
            granted = threads
            break
        if granted is None:
            # Identical tenants against an unchanged demand total fail
            # identically: everyone left is rejected.
            break
        admitted += 1
        by_width[granted] = by_width.get(granted, 0) + 1
        d = controller._demand(spec, granted)
        running += d
        bg_demand += d
    result = BackgroundAdmission(
        requested=n,
        requested_threads=spec.threads,
        admitted=admitted,
        rejected=n - admitted,
        by_width=tuple(sorted(by_width.items(), reverse=True)),
        demand_cores=bg_demand,
    )
    if controller.telemetry is not None:
        controller.telemetry.emit(
            "background_admission",
            t=controller.pool.sim.now(),
            track="hybrid",
            requested=n,
            admitted=admitted,
            rejected=result.rejected,
            downgraded=result.downgraded,
            demand_cores=bg_demand,
        )
    return result


def _protects(
    controller: AdmissionController,
    spec: TenantSpec,
    util: float,
    by_width: dict[int, int],
) -> bool:
    """No admitted tenant — focal or background — past its deadline.

    The background population is identical per width, so one
    representative check per granted width covers everyone.
    """
    for s in controller.admitted.values():
        if controller.projected_p95(s, s.threads, util) > s.deadline_s:
            return False
    for threads in by_width:
        if controller.projected_p95(spec, threads, util) > spec.deadline_s:
            return False
    return True
