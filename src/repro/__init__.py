"""repro — a full reproduction of *Towards Practical Cloud Offloading
for Low-cost Ground Vehicle Workloads* (IPDPS 2021).

The package contains the paper's contribution (the adaptive offloading
framework: analytical model, fine-grained migration, cloud
acceleration, real-time network adjustment) **and** every substrate it
runs on, built from scratch: a deterministic discrete-event ROS-like
middleware, a 2-D vehicle/world simulator, wireless network models
with the paper's UDP kernel-buffer pathology, compute-platform models,
and the robotics stack itself (AMCL, GMapping RBPF SLAM, layered
costmaps, A*/Dijkstra planning, frontier exploration, DWA control).

Quick start::

    from repro import quickstart_navigation
    result = quickstart_navigation()
    print(result.completion_time_s, result.total_energy_j)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.framework import FrameworkConfig, OffloadingFramework
from repro.core.migration import OffloadingGoal
from repro.vehicle.robot import LGV, RobotProfile, TURTLEBOT3_PROFILE
from repro.workloads.exploration import build_exploration
from repro.workloads.missions import MissionResult, MissionRunner
from repro.workloads.navigation import build_navigation
from repro.world.geometry import Pose2D
from repro.world.maps import (
    box_world,
    corridor_world,
    intel_lab_world,
    obstacle_course_world,
    open_world,
)

__version__ = "1.0.0"

__all__ = [
    "OffloadingFramework",
    "FrameworkConfig",
    "OffloadingGoal",
    "LGV",
    "RobotProfile",
    "TURTLEBOT3_PROFILE",
    "MissionRunner",
    "MissionResult",
    "build_navigation",
    "build_exploration",
    "Pose2D",
    "box_world",
    "open_world",
    "corridor_world",
    "obstacle_course_world",
    "intel_lab_world",
    "quickstart_navigation",
    "__version__",
]


def quickstart_navigation(
    offload: bool = True,
    server: str = "gateway",
    threads: int = 8,
    seed: int = 0,
) -> MissionResult:
    """Run one navigation mission end-to-end and return its metrics.

    The 60-second tour of the system: builds the Fig. 2 pipeline in a
    10 m arena, attaches the offloading framework (or the local
    baseline), runs the mission, and returns completion time, the
    per-component energy budget, and the final node placement.
    """
    from repro.experiments._missions import NAV_CYCLES

    w = build_navigation(
        box_world(10.0), Pose2D(2, 2, 0.7), Pose2D(8, 8, 0), seed=seed, wap_xy=(2.0, 2.0)
    )
    server_host = w.gateway_host if server == "gateway" else w.cloud_host
    fw = OffloadingFramework(
        w.graph,
        w.lgv,
        w.lgv_host,
        server_host,
        (2.0, 2.0),
        NAV_CYCLES,
        FrameworkConfig(
            initial_placement="strategy" if offload else "all_local",
            server_threads=threads,
        ),
    )
    return MissionRunner(w, framework=fw, timeout_s=400.0).run()
