"""Plain-text tables for benchmark output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format with an SI prefix: 1.23e9 -> '1.23 G'."""
    if value != value:  # NaN
        return "-"
    for threshold, prefix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.{digits}g} {prefix}{unit}"
    return f"{value:.{digits}g} {unit}".rstrip()


def format_seconds(value: float, digits: int = 3) -> str:
    """Format a duration: 0.00123 -> '1.23 ms'."""
    if value != value:
        return "-"
    if abs(value) >= 1.0:
        return f"{value:.{digits}g} s"
    if abs(value) >= 1e-3:
        return f"{value * 1e3:.{digits}g} ms"
    return f"{value * 1e6:.{digits}g} us"


@dataclass
class Table:
    """A titled table of rows with fixed columns.

    ``render()`` produces aligned plain text; ``rows`` stay available
    as raw values so tests can assert on the numbers.
    """

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    note: str = ""

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """All values of the named column."""
        i = self.columns.index(name)
        return [r[i] for r in self.rows]

    def render(self) -> str:
        """The table as aligned plain text."""
        cells = [self.columns] + [
            [v if isinstance(v, str) else f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
            for row in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)
