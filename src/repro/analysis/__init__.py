"""Result records and presentation helpers for the evaluation harness.

Benchmarks produce :class:`~repro.analysis.tables.Table` objects and
ASCII series plots so every paper table/figure regenerates as readable
terminal output (and machine-readable rows for tests).
"""

from repro.analysis.tables import Table, format_seconds, format_si
from repro.analysis.figures import ascii_series, Series
from repro.analysis.viz import WorldView, render_mission

__all__ = [
    "Table",
    "format_seconds",
    "format_si",
    "ascii_series",
    "Series",
    "WorldView",
    "render_mission",
]
