"""ASCII time-series rendering for figure reproduction output."""

from __future__ import annotations

from dataclasses import dataclass, field



@dataclass
class Series:
    """One named (x, y) series."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append a point; x must be non-decreasing."""
        if self.x and x < self.x[-1]:
            raise ValueError("series x must be non-decreasing")
        self.x.append(x)
        self.y.append(y)


def ascii_series(
    title: str,
    series: list[Series],
    width: int = 72,
    height: int = 14,
) -> str:
    """Render series as an ASCII chart (one glyph per series).

    Good enough to eyeball a figure's shape in terminal output; tests
    assert on the raw series, not the art.
    """
    glyphs = "*o+x#@%&"
    nonempty = [s for s in series if s.x]
    if not nonempty:
        return f"== {title} ==\n(no data)"
    x_min = min(min(s.x) for s in nonempty)
    x_max = max(max(s.x) for s in nonempty)
    y_min = min(min(s.y) for s in nonempty)
    y_max = max(max(s.y) for s in nonempty)
    if x_max <= x_min:
        x_max = x_min + 1.0
    if y_max <= y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(nonempty):
        g = glyphs[si % len(glyphs)]
        for xv, yv in zip(s.x, s.y):
            col = int((xv - x_min) / (x_max - x_min) * (width - 1))
            row = int((yv - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = g
    lines = [f"== {title} =="]
    lines.append(f"y: [{y_min:.3g}, {y_max:.3g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{x_min:.3g}, {x_max:.3g}]")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={s.name}" for i, s in enumerate(nonempty)
    )
    lines.append(legend)
    return "\n".join(lines)
