"""ASCII world rendering: maps, costmaps, robot trajectories.

Terminal-grade visualization for examples and debugging: the occupancy
grid as characters, with optional overlays for the driven path, the
planned path, the robot, the goal and the WAP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.world.geometry import Pose2D
from repro.world.grid import CellState, OccupancyGrid

#: Glyphs per cell state.
_STATE_GLYPHS = {
    int(CellState.FREE): ".",
    int(CellState.OCCUPIED): "#",
    int(CellState.UNKNOWN): " ",
}


@dataclass
class WorldView:
    """A renderable view of a grid with overlays.

    Overlays draw in priority order: trajectory < plan < markers, so a
    marker is never hidden by the path passing through it.
    """

    grid: OccupancyGrid
    max_cols: int = 78
    _overlay: dict[tuple[int, int], str] = field(default_factory=dict)

    def _cell(self, x: float, y: float) -> tuple[int, int]:
        return self.grid.world_to_cell(x, y)

    def add_trajectory(self, xy: np.ndarray, glyph: str = "o") -> WorldView:
        """Overlay a driven path ((N, 2) world points)."""
        pts = np.asarray(xy, dtype=float)
        for x, y in pts:
            rc = self._cell(float(x), float(y))
            self._overlay.setdefault(rc, glyph)
        return self

    def add_plan(self, xy: np.ndarray, glyph: str = "+") -> WorldView:
        """Overlay a planned path (drawn over trajectories)."""
        pts = np.asarray(xy, dtype=float)
        for x, y in pts:
            self._overlay[self._cell(float(x), float(y))] = glyph
        return self

    def add_marker(self, pose: Pose2D | tuple[float, float], glyph: str) -> WorldView:
        """Overlay a single marker (robot 'R', goal 'G', WAP 'W', ...)."""
        if isinstance(pose, Pose2D):
            x, y = pose.x, pose.y
        else:
            x, y = pose
        self._overlay[self._cell(x, y)] = glyph
        return self

    def render(self) -> str:
        """The world as text, top row = max y (as a human draws maps)."""
        g = self.grid
        step = max(1, int(np.ceil(g.cols / self.max_cols)))
        lines = []
        for r in range(g.rows - 1, -1, -step):
            row_chars = []
            for c in range(0, g.cols, step):
                # overlays win within the downsampling block
                glyph = None
                for rr in range(r, max(r - step, -1), -1):
                    for cc in range(c, min(c + step, g.cols)):
                        if (rr, cc) in self._overlay:
                            glyph = self._overlay[(rr, cc)]
                            break
                    if glyph:
                        break
                if glyph is None:
                    block = g.data[max(r - step + 1, 0) : r + 1, c : min(c + step, g.cols)]
                    if (block == int(CellState.OCCUPIED)).any():
                        glyph = "#"
                    elif (block == int(CellState.UNKNOWN)).all():
                        glyph = " "
                    else:
                        glyph = "."
                row_chars.append(glyph)
            lines.append("".join(row_chars))
        return "\n".join(lines)


def render_mission(
    grid: OccupancyGrid,
    trajectory: np.ndarray | None = None,
    plan: np.ndarray | None = None,
    robot: Pose2D | None = None,
    goal: Pose2D | None = None,
    wap: tuple[float, float] | None = None,
    max_cols: int = 78,
) -> str:
    """One-call mission picture: map + path + robot + goal + WAP."""
    view = WorldView(grid, max_cols=max_cols)
    if trajectory is not None and len(trajectory):
        view.add_trajectory(trajectory)
    if plan is not None and len(plan):
        view.add_plan(plan)
    if wap is not None:
        view.add_marker(wap, "W")
    if goal is not None:
        view.add_marker(goal, "G")
    if robot is not None:
        view.add_marker(robot, "R")
    return view.render()
